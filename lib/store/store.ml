module Disk = Histar_disk.Disk
module Wal = Histar_wal.Wal
module Bptree = Histar_btree.Bptree
module Codec = Histar_util.Codec
module Checksum = Histar_util.Checksum
module Metrics = Histar_metrics.Metrics
module Trace = Histar_metrics.Trace

(* Checkpoint frequency and virtual-time cost, plus global mirrors of
   the per-instance WAL-path stats, so the benchmark runner's registry
   snapshot sees storage work without holding a store handle. *)
let m_checkpoints = Metrics.counter "store.checkpoints"
let m_checkpoint_ns = Metrics.histogram "store.checkpoint_ns"
let m_sync_batches = Metrics.counter "store.sync_batches"
let m_synced_oids = Metrics.counter "store.synced_oids"
let m_cache_hits = Metrics.counter "store.cache_hits"
let m_cache_misses = Metrics.counter "store.cache_misses"

(* Scrub/repair activity under media faults: objects rewritten to
   fresh homes, sectors permanently quarantined, objects whose payload
   could not be recovered from any copy. *)
let m_recoveries = Metrics.counter "store.recoveries"
let m_recovered_objects = Metrics.counter "store.recovered_objects"
let m_replayed_records = Metrics.counter "store.replayed_records"
let m_scrubs = Metrics.counter "store.scrubs"
let m_repaired = Metrics.counter "store.repaired_objects"
let m_quarantined = Metrics.counter "store.quarantined_sectors"
let m_lost = Metrics.counter "store.lost_objects"

let store_magic = 0x48695374L (* "HiSt" *)
let object_magic = 0x4F424A31 (* "OBJ1" *)

type stats = {
  mutable checkpoints : int;
  mutable wal_commits : int;
  mutable wal_records : int;
  mutable log_applies : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

type t = {
  disk : Disk.t;
  wal : Wal.t;
  wal_sectors : int;
  apply_threshold : int;
  sector_bytes : int;
  mutable object_map : int64 Bptree.t;
      (** oid → packed (start << 24 | sector count). The tree is
          persistent; this field holds the current root, so {!fork} can
          branch the whole map in O(1). *)
  alloc : Extent_alloc.t;
  dirty : (int64, string option) Hashtbl.t;
      (** pending updates; [None] means deletion *)
  cache : (int64, string) Hashtbl.t;  (** clean read cache *)
  stats : stats;
  mutable generation : int64;
  mutable checkpoint_extent : (int * int) option;  (** start, sectors *)
  mutable quarantined : (int * int) list;
      (** extents withdrawn from service after a latent media error
          survived retry: never returned to the allocator, persisted in
          the checkpoint metadata, and counted as their own category in
          the {!fsck} tiling proof. Sorted by start. *)
  mutable wal_epoch : int64;
      (** WAL epoch whose records are valid to replay over the snapshot
          this superblock describes. A checkpoint's superblock names the
          post-truncate epoch, so a crash between the superblock write
          and the log truncate cannot replay stale records over the new
          snapshot (which would regress synced objects). *)
}

let wal_start = 1
let default_wal_sectors = 65_536
let pack ~start ~sectors = Int64.logor (Int64.shift_left (Int64.of_int start) 24) (Int64.of_int sectors)

let unpack v =
  let start = Int64.to_int (Int64.shift_right_logical v 24) in
  let sectors = Int64.to_int (Int64.logand v 0xFF_FFFFL) in
  (start, sectors)

let fresh_stats () =
  {
    checkpoints = 0;
    wal_commits = 0;
    wal_records = 0;
    log_applies = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let sectors_for t bytes = (bytes + t.sector_bytes - 1) / t.sector_bytes

(* ---------- object images ---------- *)

(* Image: magic u32, byte length u32, checksum i64, payload, padding. *)
let object_image t payload =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e object_magic;
  Codec.Enc.u32 e (String.length payload);
  Codec.Enc.i64 e (Checksum.fnv64 payload);
  Codec.Enc.raw e payload;
  let body = Codec.Enc.to_string e in
  let padded = sectors_for t (String.length body) * t.sector_bytes in
  body ^ String.make (padded - String.length body) '\000'

let parse_object_image image =
  let d = Codec.Dec.of_string image in
  let m = Codec.Dec.u32 d in
  if m <> object_magic then failwith "Store: bad object magic";
  let len = Codec.Dec.u32 d in
  let sum = Codec.Dec.i64 d in
  let payload = Codec.Dec.raw d len in
  if not (Int64.equal (Checksum.fnv64 payload) sum) then
    failwith "Store: object checksum mismatch";
  payload

(* ---------- superblock ---------- *)

let superblock_image t =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e store_magic;
  Codec.Enc.i64 e t.generation;
  Codec.Enc.i64 e t.wal_epoch;
  Codec.Enc.u32 e t.apply_threshold;
  Codec.Enc.u32 e t.wal_sectors;
  (match t.checkpoint_extent with
  | None ->
      Codec.Enc.bool e false;
      Codec.Enc.u32 e 0;
      Codec.Enc.u32 e 0
  | Some (start, sectors) ->
      Codec.Enc.bool e true;
      Codec.Enc.u32 e start;
      Codec.Enc.u32 e sectors);
  let body = Codec.Enc.to_string e in
  body ^ String.make (t.sector_bytes - String.length body) '\000'

let write_superblock t =
  Disk.write t.disk ~sector:0 (superblock_image t);
  Disk.flush t.disk

(* ---------- WAL records ---------- *)

let wal_record ~oid update =
  let e = Codec.Enc.create () in
  (match update with
  | Some payload ->
      Codec.Enc.u8 e 1;
      Codec.Enc.i64 e oid;
      Codec.Enc.str e payload
  | None ->
      Codec.Enc.u8 e 2;
      Codec.Enc.i64 e oid);
  Codec.Enc.to_string e

let parse_wal_record payload =
  let d = Codec.Dec.of_string payload in
  match Codec.Dec.u8 d with
  | 1 ->
      let oid = Codec.Dec.i64 d in
      let data = Codec.Dec.str d in
      (oid, Some data)
  | 2 -> (Codec.Dec.i64 d, None)
  | _ -> failwith "Store: unknown WAL record tag"

(* ---------- construction ---------- *)

let format ~disk ?(wal_sectors = default_wal_sectors) ?(apply_threshold = 1000)
    () =
  let geometry = Disk.geometry disk in
  let wal = Wal.format ~disk ~start:wal_start ~sectors:wal_sectors in
  let alloc = Extent_alloc.create () in
  let data_start = wal_start + wal_sectors in
  Extent_alloc.add_region alloc ~start:data_start
    ~sectors:(geometry.Disk.sectors - data_start);
  let t =
    {
      disk;
      wal;
      wal_sectors;
      apply_threshold;
      sector_bytes = geometry.Disk.sector_bytes;
      object_map = Bptree.create ();
      alloc;
      dirty = Hashtbl.create 256;
      cache = Hashtbl.create 256;
      stats = fresh_stats ();
      generation = 0L;
      checkpoint_extent = None;
      quarantined = [];
      wal_epoch = Wal.epoch wal;
    }
  in
  write_superblock t;
  t

(* ---------- reads ---------- *)

let read_from_home t oid =
  match Bptree.find t.object_map oid with
  | None -> None
  | Some packed ->
      let start, sectors = unpack packed in
      let image = Disk.read_retrying t.disk ~sector:start ~count:sectors in
      Some (parse_object_image image)

let get t ~oid =
  match Hashtbl.find_opt t.dirty oid with
  | Some update -> update
  | None -> (
      match Hashtbl.find_opt t.cache oid with
      | Some payload ->
          t.stats.cache_hits <- t.stats.cache_hits + 1;
          Metrics.Counter.incr m_cache_hits;
          Some payload
      | None -> (
          t.stats.cache_misses <- t.stats.cache_misses + 1;
          Metrics.Counter.incr m_cache_misses;
          match read_from_home t oid with
          | Some payload ->
              Hashtbl.replace t.cache oid payload;
              Some payload
          | None -> None))

let mem t ~oid = Option.is_some (get t ~oid)

(* ---------- writes ---------- *)

let put t ~oid payload =
  Hashtbl.replace t.dirty oid (Some payload);
  Hashtbl.remove t.cache oid

let delete t ~oid =
  let persistent = Bptree.mem t.object_map oid in
  if persistent then Hashtbl.replace t.dirty oid None
  else Hashtbl.remove t.dirty oid;
  Hashtbl.remove t.cache oid

(* ---------- checkpoint ---------- *)

let encode_metadata ~object_map ~alloc ~quarantined =
  let e = Codec.Enc.create () in
  Bptree.encode e object_map;
  Extent_alloc.encode e alloc;
  Codec.Enc.u32 e (List.length quarantined);
  List.iter
    (fun (start, sectors) ->
      Codec.Enc.u32 e start;
      Codec.Enc.u32 e sectors)
    quarantined;
  let body = Codec.Enc.to_string e in
  let e2 = Codec.Enc.create () in
  Codec.Enc.i64 e2 (Checksum.fnv64 body);
  Codec.Enc.str e2 body;
  Codec.Enc.to_string e2

(* Crash atomicity: until the new superblock is durable, nothing that
   the *previous* snapshot references may be overwritten. New object
   images and the new metadata image therefore come from free space
   only; extents vacated by this checkpoint are collected in [to_free]
   and returned to the allocator last. The metadata image must describe
   the post-free allocator, so it encodes a copy with the deferred
   frees already applied. *)
let checkpoint t =
  t.stats.checkpoints <- t.stats.checkpoints + 1;
  Metrics.Counter.incr m_checkpoints;
  let clock = Disk.clock t.disk in
  let t0 = Histar_util.Sim_clock.now_ns clock in
  let dirty_at_entry = Hashtbl.length t.dirty in
  let to_free = ref [] in
  (* Write dirty objects to fresh home locations, in oid order for
     locality. *)
  let dirty = Hashtbl.fold (fun oid u acc -> (oid, u) :: acc) t.dirty [] in
  let dirty = List.sort (fun (a, _) (b, _) -> Int64.compare a b) dirty in
  List.iter
    (fun (oid, update) ->
      (match Bptree.find t.object_map oid with
      | Some packed ->
          to_free := unpack packed :: !to_free;
          (match Bptree.remove t.object_map oid with
          | Some m -> t.object_map <- m
          | None -> assert false)
      | None -> ());
      match update with
      | None -> ()
      | Some payload -> (
          let image = object_image t payload in
          let sectors = String.length image / t.sector_bytes in
          match Extent_alloc.alloc t.alloc ~sectors with
          | None -> failwith "Store: disk full"
          | Some start ->
              Disk.write t.disk ~sector:start image;
              t.object_map <- Bptree.insert t.object_map oid (pack ~start ~sectors);
              Hashtbl.replace t.cache oid payload))
    dirty;
  Hashtbl.reset t.dirty;
  (match t.checkpoint_extent with
  | Some (start, sectors) -> to_free := (start, sectors) :: !to_free
  | None -> ());
  t.checkpoint_extent <- None;
  (* The encoded allocator = live allocator + deferred frees + the
     metadata extent itself removed. Allocate the extent first (sized
     against the pre-free encoding plus slack: frees only shrink the
     encoding by coalescing, and the allocation itself perturbs it by
     at most one split). *)
  let future_alloc () =
    let a = Extent_alloc.copy t.alloc in
    List.iter (fun (start, sectors) -> Extent_alloc.free a ~start ~sectors) !to_free;
    a
  in
  let estimate =
    String.length
      (encode_metadata ~object_map:t.object_map ~alloc:(future_alloc ())
         ~quarantined:t.quarantined)
  in
  let sectors = sectors_for t estimate + 1 in
  (match Extent_alloc.alloc t.alloc ~sectors with
  | None -> failwith "Store: disk full (checkpoint)"
  | Some start ->
      let body =
        encode_metadata ~object_map:t.object_map ~alloc:(future_alloc ())
          ~quarantined:t.quarantined
      in
      assert (String.length body <= sectors * t.sector_bytes);
      let pad = (sectors * t.sector_bytes) - String.length body in
      Disk.write t.disk ~sector:start (body ^ String.make pad '\000');
      t.checkpoint_extent <- Some (start, sectors));
  Disk.flush t.disk;
  t.generation <- Int64.add t.generation 1L;
  (* Only records of the post-truncate epoch may be replayed over this
     snapshot; everything in the current epoch is already applied. *)
  t.wal_epoch <- Int64.add (Wal.epoch t.wal) 1L;
  write_superblock t;
  (* The new snapshot is durable: vacated extents may now be reused. *)
  List.iter (fun (start, sectors) -> Extent_alloc.free t.alloc ~start ~sectors) !to_free;
  Wal.truncate t.wal;
  let t1 = Histar_util.Sim_clock.now_ns clock in
  Metrics.Histogram.observe m_checkpoint_ns (Int64.to_int (Int64.sub t1 t0));
  if Trace.enabled () then
    Trace.emit ~ts_ns:t1 "store.checkpoint"
      [
        ("generation", Int64.to_string t.generation);
        ("dirty_objects", string_of_int dirty_at_entry);
        ("virtual_ns", Int64.to_string (Int64.sub t1 t0));
      ]

(* ---------- sync (fsync path) ---------- *)

let sync_oids t ~oids =
  let append oid =
    let update =
      match Hashtbl.find_opt t.dirty oid with
      | Some u -> u
      | None -> get t ~oid
    in
    let record = wal_record ~oid update in
    (try Wal.append t.wal record
     with Wal.Log_full ->
       t.stats.log_applies <- t.stats.log_applies + 1;
       checkpoint t;
       Wal.append t.wal record);
    t.stats.wal_records <- t.stats.wal_records + 1
  in
  List.iter append oids;
  Wal.commit t.wal;
  t.stats.wal_commits <- t.stats.wal_commits + 1;
  Metrics.Counter.incr m_sync_batches;
  Metrics.Counter.add m_synced_oids (List.length oids);
  if Wal.committed_records t.wal >= t.apply_threshold then begin
    t.stats.log_applies <- t.stats.log_applies + 1;
    checkpoint t
  end

let sync_oid t ~oid = sync_oids t ~oids:[ oid ]

(* In-place page flush (§7.1): when an object already has a home
   location of the same size, force just the sectors covering
   [off, off+len) (plus the header, whose checksum changes) without
   logging or checkpointing. Falls back to the log when the object has
   no home or changed size. *)
let sync_range t ~oid ~off ~len =
  match (Hashtbl.find_opt t.dirty oid, Bptree.find t.object_map oid) with
  | Some (Some payload), Some packed ->
      let image = object_image t payload in
      let sectors = String.length image / t.sector_bytes in
      let start, home_sectors = unpack packed in
      if sectors <> home_sectors then begin
        sync_oid t ~oid;
        false
      end
      else begin
        let sb = t.sector_bytes in
        let header_bytes = 16 in
        let first = (header_bytes + off) / sb in
        let last = (header_bytes + off + max 0 (len - 1)) / sb in
        let last = min last (sectors - 1) in
        (* header sector (checksum + length) *)
        Disk.write t.disk ~sector:start (String.sub image 0 sb);
        Disk.write t.disk ~sector:(start + first)
          (String.sub image (first * sb) ((last - first + 1) * sb));
        Disk.flush t.disk;
        (* the home copy is now current; the object is clean *)
        Hashtbl.remove t.dirty oid;
        Hashtbl.replace t.cache oid payload;
        true
      end
  | Some None, _ ->
      sync_oid t ~oid;
      false
  | None, _ -> true (* already clean: the home copy is current *)
  | Some (Some _), None ->
      sync_oid t ~oid;
      false

(* ---------- recovery ---------- *)

let recover ~disk =
  let geometry = Disk.geometry disk in
  let sector_bytes = geometry.Disk.sector_bytes in
  let sb = Disk.read_retrying disk ~sector:0 ~count:1 in
  let d = Codec.Dec.of_string sb in
  let m = Codec.Dec.i64 d in
  if not (Int64.equal m store_magic) then
    invalid_arg "Store.recover: no store on this disk";
  let generation = Codec.Dec.i64 d in
  let wal_epoch = Codec.Dec.i64 d in
  let apply_threshold = Codec.Dec.u32 d in
  let wal_sectors = Codec.Dec.u32 d in
  let has_ckpt = Codec.Dec.bool d in
  let ckpt_start = Codec.Dec.u32 d in
  let ckpt_sectors = Codec.Dec.u32 d in
  let object_map, alloc, checkpoint_extent, quarantined =
    if has_ckpt then begin
      let image = Disk.read_retrying disk ~sector:ckpt_start ~count:ckpt_sectors in
      let d = Codec.Dec.of_string image in
      let sum = Codec.Dec.i64 d in
      let body = Codec.Dec.str d in
      if not (Int64.equal (Checksum.fnv64 body) sum) then
        failwith "Store.recover: checkpoint checksum mismatch";
      let d = Codec.Dec.of_string body in
      let object_map = Bptree.decode d in
      let alloc = Extent_alloc.decode d in
      let nq = Codec.Dec.u32 d in
      let quarantined =
        List.init nq (fun _ ->
            let start = Codec.Dec.u32 d in
            let sectors = Codec.Dec.u32 d in
            (start, sectors))
      in
      (object_map, alloc, Some (ckpt_start, ckpt_sectors), quarantined)
    end
    else begin
      let alloc = Extent_alloc.create () in
      let data_start = wal_start + wal_sectors in
      Extent_alloc.add_region alloc ~start:data_start
        ~sectors:(geometry.Disk.sectors - data_start);
      (Bptree.create (), alloc, None, [])
    end
  in
  let wal, records = Wal.recover ~disk ~start:wal_start ~sectors:wal_sectors in
  (* Crash between a checkpoint's superblock write and its log
     truncate: the log still holds the pre-checkpoint epoch, whose
     records are already folded into the snapshot. Replaying them would
     regress objects, so discard them and finish the truncate. *)
  let records =
    if Int64.equal (Wal.epoch wal) wal_epoch then records
    else begin
      Wal.truncate wal;
      if not (Int64.equal (Wal.epoch wal) wal_epoch) then
        failwith "Store.recover: WAL epoch diverged from superblock";
      []
    end
  in
  let t =
    {
      disk;
      wal;
      wal_sectors;
      apply_threshold;
      sector_bytes;
      object_map;
      alloc;
      dirty = Hashtbl.create 256;
      cache = Hashtbl.create 256;
      stats = fresh_stats ();
      generation;
      checkpoint_extent;
      quarantined;
      wal_epoch;
    }
  in
  List.iter
    (fun payload ->
      let oid, update = parse_wal_record payload in
      match update with
      | Some data -> put t ~oid data
      | None -> delete t ~oid)
    records;
  (* Recovery accounting: how often nodes come back from their own
     store, how many WAL records the committed prefix replayed, and
     how many live objects the recovered map holds — the numbers a
     shard-death drill reads to prove recovery actually happened. *)
  Metrics.Counter.incr m_recoveries;
  Metrics.Counter.add m_replayed_records (List.length records);
  Metrics.Counter.add m_recovered_objects (Bptree.cardinal t.object_map);
  t

(* ---------- scrub (media-fault repair) ---------- *)

type scrub_report = {
  passes : int;
  scanned : int;
  repaired : int;
  quarantined_sectors : int;
  lost : int64 list;
  clean : bool;
}

let quarantine t ~start ~sectors =
  t.quarantined <-
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      ((start, sectors) :: t.quarantined);
  Metrics.Counter.add m_quarantined sectors

let readable t ~sector ~count =
  match Disk.read_retrying t.disk ~sector ~count with
  | image -> Some image
  | exception Disk.Read_error _ -> None

(* Repair loop. Each verify pass walks every durable structure —
   store and WAL superblocks, the checkpoint metadata extent, and the
   home image of every clean mapped object — reading with retry and
   verifying checksums. Superblocks heal by rewrite (which clears a
   latent mark, like a drive remap). An object image that stays
   unreadable or fails its checksum loses its extent to the quarantine
   list; its payload is recovered from the clean cache when present
   (every checkpoint leaves one there) and re-marked dirty, so the
   forced checkpoint at the end of the pass re-homes it to fresh
   sectors. Because those repair writes can themselves strike new
   latent sectors, the loop re-verifies until a pass finds nothing
   (bounded by [max_passes]); for a fixed fault seed the whole loop is
   deterministic. *)
let scrub ?(max_passes = 10) t =
  Metrics.Counter.incr m_scrubs;
  let scanned = ref 0
  and repaired = ref 0
  and quarantined_n = ref 0
  and lost = ref [] in
  let verify_and_repair () =
    let faults = ref 0 in
    (match readable t ~sector:0 ~count:1 with
    | Some _ -> ()
    | None ->
        incr faults;
        write_superblock t);
    (match readable t ~sector:wal_start ~count:1 with
    | Some _ -> ()
    | None ->
        incr faults;
        Wal.rewrite_superblock t.wal);
    (* The in-memory object map and allocator are authoritative; a bad
       metadata extent is simply superseded by the forced checkpoint. *)
    (match t.checkpoint_extent with
    | None -> ()
    | Some (start, sectors) ->
        let ok =
          match readable t ~sector:start ~count:sectors with
          | None -> false
          | Some image -> (
              try
                let d = Codec.Dec.of_string image in
                let sum = Codec.Dec.i64 d in
                let body = Codec.Dec.str d in
                Int64.equal (Checksum.fnv64 body) sum
              with _ -> false)
        in
        if not ok then incr faults);
    let mapped = ref [] in
    Bptree.iter (fun oid packed -> mapped := (oid, packed) :: !mapped) t.object_map;
    List.iter
      (fun (oid, packed) ->
        if not (Hashtbl.mem t.dirty oid) then begin
          incr scanned;
          let start, sectors = unpack packed in
          let payload =
            match readable t ~sector:start ~count:sectors with
            | None -> None
            | Some image -> ( try Some (parse_object_image image) with _ -> None)
          in
          match payload with
          | Some _ -> ()
          | None -> (
              incr faults;
              (match Bptree.remove t.object_map oid with
              | Some m -> t.object_map <- m
              | None -> assert false);
              quarantine t ~start ~sectors;
              quarantined_n := !quarantined_n + sectors;
              match Hashtbl.find_opt t.cache oid with
              | Some data ->
                  Hashtbl.replace t.dirty oid (Some data);
                  Hashtbl.remove t.cache oid;
                  incr repaired;
                  Metrics.Counter.incr m_repaired
              | None ->
                  lost := oid :: !lost;
                  Metrics.Counter.incr m_lost)
        end)
      (List.rev !mapped);
    !faults
  in
  let rec loop n =
    let faults = verify_and_repair () in
    if faults = 0 then (n + 1, true)
    else begin
      (* Persist the repairs (and the quarantine list) even when this
         was the last allowed pass. *)
      checkpoint t;
      if n + 1 >= max_passes then (n + 1, false) else loop (n + 1)
    end
  in
  let passes, clean = loop 0 in
  if Trace.enabled () then
    Trace.emit
      ~ts_ns:(Histar_util.Sim_clock.now_ns (Disk.clock t.disk))
      "store.scrub"
      [
        ("passes", string_of_int passes);
        ("repaired", string_of_int !repaired);
        ("quarantined_sectors", string_of_int !quarantined_n);
        ("lost", string_of_int (List.length !lost));
        ("clean", string_of_bool clean);
      ];
  {
    passes;
    scanned = !scanned;
    repaired = !repaired;
    quarantined_sectors = !quarantined_n;
    lost = List.rev !lost;
    clean;
  }

let quarantined_extents t = t.quarantined

(* ---------- branching ---------- *)

(* O(1) in the number of objects: the object map and both allocator
   trees are persistent (shared roots), the disk fork shares the
   persistent media map, and the WAL handle is a fresh record over the
   forked disk. Only the dirty set, clean cache and volatile disk cache
   are copied. The [quarantined] list and [wal_epoch] live in this
   record, so a fork's quarantines and epoch bumps never reach the
   trunk. *)
let fork t =
  let disk = Disk.fork t.disk in
  let wal = Wal.fork t.wal ~disk in
  {
    disk;
    wal;
    wal_sectors = t.wal_sectors;
    apply_threshold = t.apply_threshold;
    sector_bytes = t.sector_bytes;
    object_map = t.object_map;
    alloc = Extent_alloc.copy t.alloc;
    dirty = Hashtbl.copy t.dirty;
    cache = Hashtbl.copy t.cache;
    stats = fresh_stats ();
    generation = t.generation;
    checkpoint_extent = t.checkpoint_extent;
    quarantined = t.quarantined;
    wal_epoch = t.wal_epoch;
  }

let disk t = t.disk

(* ---------- inspection ---------- *)

let iter_oids t f =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter
    (fun oid update ->
      Hashtbl.replace seen oid ();
      match update with Some _ -> f oid | None -> ())
    t.dirty;
  Bptree.iter (fun oid _ -> if not (Hashtbl.mem seen oid) then f oid) t.object_map

let object_count t =
  let n = ref 0 in
  iter_oids t (fun _ -> incr n);
  !n

let dirty_count t = Hashtbl.length t.dirty
let drop_clean_cache t = Hashtbl.reset t.cache
let stats t = t.stats
let free_sectors t = Extent_alloc.free_sectors t.alloc

let check_invariants t =
  Extent_alloc.check_invariants t.alloc;
  Bptree.check_invariants t.object_map;
  (* No persistent object's extent may be marked free. This is implied
     by allocator correctness; spot-check object map entries are
     readable and checksum-clean. *)
  Bptree.iter
    (fun oid packed ->
      let start, sectors = unpack packed in
      if sectors <= 0 then failwith "Store: empty object extent";
      if not (Hashtbl.mem t.dirty oid) then
        ignore
          (parse_object_image
             (Disk.read_retrying t.disk ~sector:start ~count:sectors)))
    t.object_map

(* Whole-disk accounting, for the crash-sweep harness. Beyond
   [check_invariants], prove that the object map, the checkpoint
   metadata extent and the allocator's free extents exactly tile the
   data region: any gap is a leaked extent, any overlap is a double
   allocation. Also re-verify the on-disk checkpoint image checksum and
   the WAL's structural invariants. *)
let fsck t =
  check_invariants t;
  Wal.check_invariants t.wal;
  let geometry = Disk.geometry t.disk in
  let data_start = wal_start + t.wal_sectors in
  let extents = ref [] in
  let add what start sectors = extents := (what, start, sectors) :: !extents in
  Bptree.iter
    (fun oid packed ->
      let start, sectors = unpack packed in
      add (Printf.sprintf "object %Ld" oid) start sectors)
    t.object_map;
  (match t.checkpoint_extent with
  | Some (start, sectors) ->
      add "checkpoint metadata" start sectors;
      (* Checkpoint checksum integrity: the snapshot we would recover
         from must still be readable. *)
      let image = Disk.read_retrying t.disk ~sector:start ~count:sectors in
      let d = Codec.Dec.of_string image in
      let sum = Codec.Dec.i64 d in
      let body = Codec.Dec.str d in
      if not (Int64.equal (Checksum.fnv64 body) sum) then
        failwith "Store.fsck: checkpoint checksum mismatch"
  | None -> ());
  List.iter
    (fun (start, sectors) -> add "free extent" start sectors)
    (Extent_alloc.to_list t.alloc);
  List.iter
    (fun (start, sectors) -> add "quarantined extent" start sectors)
    t.quarantined;
  let extents =
    List.sort (fun (_, a, _) (_, b, _) -> Int.compare a b) !extents
  in
  let pos = ref data_start in
  List.iter
    (fun (what, start, sectors) ->
      if start < !pos then
        failwith
          (Printf.sprintf
             "Store.fsck: %s [%d, %d) overlaps allocation ending at %d" what
             start (start + sectors) !pos);
      if start > !pos then
        failwith
          (Printf.sprintf "Store.fsck: leaked sectors [%d, %d) before %s" !pos
             start what);
      pos := start + sectors)
    extents;
  if !pos <> geometry.Disk.sectors then
    failwith
      (Printf.sprintf "Store.fsck: leaked sectors [%d, %d) at end of disk" !pos
         geometry.Disk.sectors)
