(** The single-level store (§3, §4).

    All kernel objects live here; on bootup the entire system state is
    restored from the most recent on-disk snapshot. The store keeps a
    dirty set and a clean cache in memory:

    - {!put}/{!delete} are memory-speed and become durable at the next
      {!checkpoint} (the paper's whole-system snapshot / "group sync");
    - {!sync_oid} makes one object durable immediately by committing a
      record to the write-ahead log (the paper's fsync path); after
      [apply_threshold] logged records the store applies the log by
      checkpointing, matching the paper's "about once every 1,000
      synchronous operations";
    - {!recover} rebuilds the store from the snapshot plus the
      committed log suffix after a crash.

    Object payloads are opaque byte strings; the kernel serializes its
    objects into them. Home locations come from the two-B+-tree extent
    allocator; the object map is a third B+-tree, as in §4. *)

type t

val format :
  disk:Histar_disk.Disk.t ->
  ?wal_sectors:int ->
  ?apply_threshold:int ->
  unit ->
  t
(** Initialize an empty store on a disk. Default [wal_sectors] is
    65536 (32 MB); default [apply_threshold] is 1000 records. *)

val recover : disk:Histar_disk.Disk.t -> t
(** Rebuild from the last snapshot and replay the committed log.
    Counted in [store.recoveries]; the committed-prefix replay length
    and resulting live-object count land in [store.replayed_records]
    and [store.recovered_objects] — the numbers a shard-death drill
    reads to prove a node really came back from its own store. *)

val fork : t -> t
(** Branch the whole store — O(1) in the number of objects. The object
    map and allocator trees are persistent and shared structurally; the
    disk fork shares the persistent media map. Mutations on either side
    (puts, checkpoints, scrubs, quarantines, WAL epoch bumps) stay
    local to that branch. {!fsck} is valid on any branch. *)

val disk : t -> Histar_disk.Disk.t
(** The disk this store handle writes to (a fork's is its own). *)

val put : t -> oid:int64 -> string -> unit
val get : t -> oid:int64 -> string option
val mem : t -> oid:int64 -> bool

val delete : t -> oid:int64 -> unit
(** Removing an absent object is a no-op. *)

val sync_oid : t -> oid:int64 -> unit
(** Force this object (its current contents, or its deletion) to the
    log and flush. *)

val sync_oids : t -> oids:int64 list -> unit
(** Like {!sync_oid} for several objects with a single commit (one
    barrier) — the group-commit advantage of the log. *)

val sync_range : t -> oid:int64 -> off:int -> len:int -> bool
(** In-place page flush (§7.1): force only the sectors covering the
    byte range to the object's existing home location — no log record,
    no checkpoint. Falls back to {!sync_oid} when the object has no
    same-size home copy. Returns [true] when the in-place path was
    taken (the object already had a checkpointed home), [false] when it
    fell back to the log. *)

val checkpoint : t -> unit
(** Whole-system snapshot: write every dirty object to its home
    location, persist the object map and allocator, update the
    superblock, truncate the log. *)

val drop_clean_cache : t -> unit
(** Evict clean cached objects (used by the uncached-read benchmarks).
    Dirty objects are retained. *)

val iter_oids : t -> (int64 -> unit) -> unit
(** Every live object id (dirty or persistent), unordered. *)

val object_count : t -> int
val dirty_count : t -> int

type stats = {
  mutable checkpoints : int;
  mutable wal_commits : int;
  mutable wal_records : int;
  mutable log_applies : int;  (** checkpoints forced by the log *)
  mutable cache_hits : int;
  mutable cache_misses : int;
}

val stats : t -> stats
val free_sectors : t -> int

(** {1 Media-fault repair}

    All store reads retry transient disk errors with backoff
    ({!Histar_disk.Disk.read_retrying}). Latent sector errors and
    silent write corruption are detected by the per-object checksums
    and repaired by {!scrub}. *)

type scrub_report = {
  passes : int;  (** verify passes run (1 when already clean) *)
  scanned : int;  (** object-image verifications, summed over passes *)
  repaired : int;  (** objects re-homed from an in-memory copy *)
  quarantined_sectors : int;  (** sectors withdrawn from service *)
  lost : int64 list;  (** oids unreadable with no surviving copy *)
  clean : bool;  (** final pass found no faults *)
}

val scrub : ?max_passes:int -> t -> scrub_report
(** Verify and repair every durable structure: the store and WAL
    superblocks (healed by rewrite — rewriting clears a latent mark,
    like a drive remap), the checkpoint metadata extent (superseded by
    a forced checkpoint when bad), and each clean mapped object's home
    image. An image that stays unreadable after retries, or fails its
    checksum, loses its extent to the quarantine list — never returned
    to the allocator, persisted in checkpoint metadata — and its
    payload is re-homed from the clean cache when present. Repair
    writes can themselves strike new latent sectors, so the loop
    re-verifies until one pass is fault-free (bounded by [max_passes],
    default 10; [clean = false] when the bound is hit). Deterministic
    for a fixed fault seed. *)

val quarantined_extents : t -> (int * int) list
(** Quarantined [(start, sectors)] extents, in increasing start order. *)

val check_invariants : t -> unit
(** Structural checks: allocator and object-map B+-trees are valid and
    every mapped object image parses with a clean checksum. *)

val fsck : t -> unit
(** Everything in {!check_invariants}, plus whole-disk accounting: the
    object map, checkpoint metadata extent, free extents and
    quarantined extents must exactly tile the data region (no leaked
    sectors, no double allocation), the on-disk checkpoint image must
    checksum clean, and the WAL must satisfy
    {!Histar_wal.Wal.check_invariants}. Intended for the crash-sweep
    harness after {!recover}, and after {!scrub} under media faults. *)
