(** Free disk-space management with two B+-trees, as in §4: one indexed
    by extent size (to find appropriately-sized extents) and one by
    location (to coalesce adjacent extents on free).

    The by-size tree packs [(size, start)] into its int64 key so that
    same-sized extents coexist; the by-location tree maps
    [start → size]. *)

type t

val create : unit -> t

val add_region : t -> start:int -> sectors:int -> unit
(** Declare an initial free region. *)

val alloc : t -> sectors:int -> int option
(** Best-fit allocation: the smallest free extent that fits. Returns
    the start sector, or [None] if no extent is large enough. *)

val free : t -> start:int -> sectors:int -> unit
(** Return an extent; coalesces with free neighbours. Freeing sectors
    that are already free is a fatal error. *)

val free_sectors : t -> int
(** Total free space. *)

val extent_count : t -> int
(** Number of (coalesced) free extents — a fragmentation measure. *)

val largest_extent : t -> int
(** Size of the largest free extent (0 if none). *)

val to_list : t -> (int * int) list
(** Free extents as [(start, sectors)] in increasing start order. Used
    by the store's fsck to prove free and allocated extents tile the
    data region. *)

val copy : t -> t
(** An independent copy — O(1), the persistent trees are shared
    structurally (used to encode "allocator as of the end of the
    checkpoint" while deferring frees for crash atomicity, and to give
    each store fork its own allocator). *)

val check_invariants : t -> unit
(** Both trees describe the same extent set; no extent overlaps or abuts
    another (abutting extents must have been coalesced). *)

val encode : Histar_util.Codec.Enc.t -> t -> unit
val decode : Histar_util.Codec.Dec.t -> t
