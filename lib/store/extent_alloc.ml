module Bptree = Histar_btree.Bptree

(* The two index trees are persistent; the allocator handle just holds
   the current roots. [copy] is therefore O(1) and copies never alias:
   a fork's allocations can't leak into the trunk. *)
type t = {
  mutable by_size : int64 Bptree.t;  (** key = size<<32 | start, value = start *)
  mutable by_loc : int64 Bptree.t;  (** key = start, value = size *)
}

(* Packing requires starts and sizes below 2^32 sectors; the simulated
   disk is 40 GB = ~78M sectors, far inside the bound. *)
let size_key ~sectors ~start =
  assert (sectors > 0 && sectors < 0x1_0000_0000);
  assert (start >= 0 && start < 0x1_0000_0000);
  Int64.logor
    (Int64.shift_left (Int64.of_int sectors) 32)
    (Int64.of_int start)

let create () = { by_size = Bptree.create (); by_loc = Bptree.create () }

let insert_extent t ~start ~sectors =
  t.by_loc <- Bptree.insert t.by_loc (Int64.of_int start) (Int64.of_int sectors);
  t.by_size <-
    Bptree.insert t.by_size (size_key ~sectors ~start) (Int64.of_int start)

let remove_extent t ~start ~sectors =
  (match Bptree.remove t.by_loc (Int64.of_int start) with
  | Some tr -> t.by_loc <- tr
  | None -> assert false);
  match Bptree.remove t.by_size (size_key ~sectors ~start) with
  | Some tr -> t.by_size <- tr
  | None -> assert false

let free t ~start ~sectors =
  if sectors <= 0 then invalid_arg "Extent_alloc.free: empty extent";
  (* Detect double-free / overlap with the by-location tree. *)
  (match Bptree.find_leq t.by_loc (Int64.of_int start) with
  | Some (s, len)
    when Int64.to_int s + Int64.to_int len > start ->
      failwith "Extent_alloc.free: overlaps an already-free extent"
  | Some _ | None -> ());
  (match Bptree.find_gt t.by_loc (Int64.of_int start) with
  | Some (s, _) when Int64.to_int s < start + sectors ->
      failwith "Extent_alloc.free: overlaps an already-free extent"
  | Some _ | None -> ());
  (* Coalesce with the predecessor if it abuts. *)
  let start, sectors =
    match Bptree.find_lt t.by_loc (Int64.of_int start) with
    | Some (s, len)
      when Int64.to_int s + Int64.to_int len = start ->
        let s = Int64.to_int s and len = Int64.to_int len in
        remove_extent t ~start:s ~sectors:len;
        (s, len + sectors)
    | Some _ | None -> (start, sectors)
  in
  (* Coalesce with the successor if it abuts. *)
  let sectors =
    match Bptree.find_geq t.by_loc (Int64.of_int (start + sectors)) with
    | Some (s, len) when Int64.to_int s = start + sectors ->
        let len = Int64.to_int len in
        remove_extent t ~start:(start + sectors) ~sectors:len;
        sectors + len
    | Some _ | None -> sectors
  in
  insert_extent t ~start ~sectors

let add_region t ~start ~sectors = free t ~start ~sectors

let alloc t ~sectors =
  if sectors <= 0 then invalid_arg "Extent_alloc.alloc: empty request";
  match Bptree.find_geq t.by_size (size_key ~sectors ~start:0) with
  | None -> None
  | Some (key, start) ->
      let ext_sectors = Int64.to_int (Int64.shift_right_logical key 32) in
      let start = Int64.to_int start in
      remove_extent t ~start ~sectors:ext_sectors;
      if ext_sectors > sectors then
        insert_extent t ~start:(start + sectors) ~sectors:(ext_sectors - sectors);
      Some start

let free_sectors t =
  Bptree.fold (fun acc _ len -> acc + Int64.to_int len) 0 t.by_loc

let extent_count t = Bptree.cardinal t.by_loc

let to_list t =
  List.rev
    (Bptree.fold
       (fun acc start len -> (Int64.to_int start, Int64.to_int len) :: acc)
       [] t.by_loc)

let largest_extent t =
  match Bptree.max_binding t.by_size with
  | None -> 0
  | Some (key, _) -> Int64.to_int (Int64.shift_right_logical key 32)

let check_invariants t =
  Bptree.check_invariants t.by_loc;
  Bptree.check_invariants t.by_size;
  if Bptree.cardinal t.by_loc <> Bptree.cardinal t.by_size then
    failwith "Extent_alloc: tree cardinality mismatch";
  let prev_end = ref (-1) in
  Bptree.iter
    (fun start len ->
      let start = Int64.to_int start and len = Int64.to_int len in
      if len <= 0 then failwith "Extent_alloc: empty extent";
      if start <= !prev_end then failwith "Extent_alloc: overlap/abut not coalesced";
      if start = !prev_end + 1 && !prev_end >= 0 then ();
      (* abutting means start = prev_end exactly (end-exclusive) *)
      if not (Bptree.mem t.by_size (size_key ~sectors:len ~start)) then
        failwith "Extent_alloc: extent missing from by-size tree";
      prev_end := start + len - 1)
    t.by_loc;
  (* also verify no abutting pairs (should have been coalesced) *)
  let last = ref None in
  Bptree.iter
    (fun start len ->
      let start = Int64.to_int start and len = Int64.to_int len in
      (match !last with
      | Some (s, l) when s + l = start ->
          failwith "Extent_alloc: abutting extents not coalesced"
      | Some _ | None -> ());
      last := Some (start, len))
    t.by_loc

(* Structural sharing makes this a constant-time branch point. *)
let copy t = { by_size = t.by_size; by_loc = t.by_loc }

let encode enc t =
  let module E = Histar_util.Codec.Enc in
  E.u32 enc (Bptree.cardinal t.by_loc);
  Bptree.iter
    (fun start len ->
      E.i64 enc start;
      E.i64 enc len)
    t.by_loc

let decode dec =
  let module D = Histar_util.Codec.Dec in
  let t = create () in
  let n = D.u32 dec in
  for _ = 1 to n do
    let start = Int64.to_int (D.i64 dec) in
    let len = Int64.to_int (D.i64 dec) in
    insert_extent t ~start ~sectors:len
  done;
  t
