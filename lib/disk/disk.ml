exception Crashed
exception Read_error of { sector : int; transient : bool }

module Metrics = Histar_metrics.Metrics
module Trace = Histar_metrics.Trace
module Disk_faults = Histar_faults.Faults.Disk_faults
module Bptree = Histar_btree.Bptree

(* Process-global media counters and decomposed service-time totals
   (§7's disk model made observable: where virtual time on the platter
   actually goes). Per-instance counts stay in [stats]. *)
let m_reads = Metrics.counter "disk.reads"
let m_sectors_read = Metrics.counter "disk.sectors_read"
let m_media_sector_writes = Metrics.counter "disk.media_sector_writes"
let m_flushes = Metrics.counter "disk.flushes"
let m_seeks = Metrics.counter "disk.seeks"
let m_seek_ns = Metrics.counter "disk.seek_ns"
let m_rotate_ns = Metrics.counter "disk.rotate_ns"
let m_transfer_ns = Metrics.counter "disk.transfer_ns"
let m_read_retries = Metrics.counter "disk.read_retries"
let m_read_errors = Metrics.counter "disk.read_errors"

type geometry = { sectors : int; sector_bytes : int }

let default_geometry = { sectors = 78_125_000; sector_bytes = 512 }

type params = {
  seek_min_us : float;
  seek_max_us : float;
  rotation_us : float;
  transfer_us_per_sector : float;
}

(* Seagate Barracuda 7200.7: 7200 RPM, ~8.5ms average seek, ~58 MB/s. *)
let default_params =
  {
    seek_min_us = 800.0;
    seek_max_us = 17_000.0;
    rotation_us = 8_333.0;
    transfer_us_per_sector = 512.0 /. 58.0;
  }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable flushes : int;
  mutable seeks : int;
}

(* The durable media is a persistent map sector → contents: capturing
   "the platter as of this instant" is an O(1) root copy, which is what
   lets the crash sweep snapshot at every write instead of replaying
   the workload prefix for every crash point. The volatile write cache
   stays a hash table — it is lost on crash and copied on fork. *)
type t = {
  geometry : geometry;
  params : params;
  clock : Histar_util.Sim_clock.t;
  mutable media : string Bptree.t;  (** durable contents *)
  cache : (int, string) Hashtbl.t;  (** volatile dirty sectors *)
  stats : stats;
  mutable head : int;  (** current head position (sector) *)
  mutable crash_after : int option;  (** media writes remaining before crash *)
  mutable is_crashed : bool;
  mutable media_writes : int;  (** lifetime media sector writes (monotonic) *)
  mutable write_trace : (sector:int -> data:string -> unit) option;
  mutable pre_write_hook : (unit -> unit) option;
  mutable faults : Disk_faults.t option;  (** injected media faults *)
}

let fresh_stats () =
  {
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    flushes = 0;
    seeks = 0;
  }

let create ?(geometry = default_geometry) ?(params = default_params) ?faults
    ~clock () =
  {
    faults;
    geometry;
    params;
    clock;
    media = Bptree.create ();
    cache = Hashtbl.create 256;
    stats = fresh_stats ();
    head = 0;
    crash_after = None;
    is_crashed = false;
    media_writes = 0;
    write_trace = None;
    pre_write_hook = None;
  }

let set_faults t f = t.faults <- f
let faults t = t.faults
let geometry t = t.geometry
let clock t = t.clock
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.reads <- 0;
  s.writes <- 0;
  s.sectors_read <- 0;
  s.sectors_written <- 0;
  s.flushes <- 0;
  s.seeks <- 0

let check_alive t = if t.is_crashed then raise Crashed

let check_range t sector count =
  if sector < 0 || count < 0 || sector + count > t.geometry.sectors then
    invalid_arg
      (Printf.sprintf "Disk: sector range [%d, %d) out of bounds" sector
         (sector + count))

(* Charge seek + rotational latency when the head moves, then transfer
   time for [count] contiguous sectors. *)
let charge_io t ~sector ~count =
  let p = t.params in
  if t.head <> sector then begin
    t.stats.seeks <- t.stats.seeks + 1;
    Metrics.Counter.incr m_seeks;
    let dist = float_of_int (abs (sector - t.head)) in
    let frac = dist /. float_of_int t.geometry.sectors in
    let seek = p.seek_min_us +. ((p.seek_max_us -. p.seek_min_us) *. sqrt frac) in
    Metrics.Counter.add m_seek_ns (int_of_float (seek *. 1e3));
    Metrics.Counter.add m_rotate_ns (int_of_float (p.rotation_us /. 2.0 *. 1e3));
    Histar_util.Sim_clock.advance_us t.clock (seek +. (p.rotation_us /. 2.0))
  end;
  let transfer = p.transfer_us_per_sector *. float_of_int count in
  Metrics.Counter.add m_transfer_ns (int_of_float (transfer *. 1e3));
  Histar_util.Sim_clock.advance_us t.clock transfer;
  t.head <- sector + count

let zero_sector t = String.make t.geometry.sector_bytes '\000'

let sector_contents t i =
  match Hashtbl.find_opt t.cache i with
  | Some s -> s
  | None -> (
      match Bptree.find t.media (Int64.of_int i) with
      | Some s -> s
      | None -> zero_sector t)

let read t ~sector ~count =
  check_alive t;
  check_range t sector count;
  t.stats.reads <- t.stats.reads + 1;
  t.stats.sectors_read <- t.stats.sectors_read + count;
  Metrics.Counter.incr m_reads;
  Metrics.Counter.add m_sectors_read count;
  (* Cached (dirty) sectors cost nothing extra; charge for the whole run
     conservatively as one media access. *)
  charge_io t ~sector ~count;
  (* Injected media faults only apply to sectors actually served from
     the platter; dirty sectors still in the volatile cache are RAM. *)
  (match t.faults with
  | None -> ()
  | Some f ->
      for i = sector to sector + count - 1 do
        if not (Hashtbl.mem t.cache i) then
          match Disk_faults.on_read f ~sector:i with
          | Disk_faults.Read_ok -> ()
          | Disk_faults.Read_transient ->
              Metrics.Counter.incr m_read_errors;
              raise (Read_error { sector = i; transient = true })
          | Disk_faults.Read_latent ->
              Metrics.Counter.incr m_read_errors;
              raise (Read_error { sector = i; transient = false })
      done);
  let buf = Buffer.create (count * t.geometry.sector_bytes) in
  for i = sector to sector + count - 1 do
    Buffer.add_string buf (sector_contents t i)
  done;
  Buffer.contents buf

(* Bounded retry with exponential backoff charged on the virtual
   clock.  Transient errors are retried; latent sector errors are
   persistent by definition, so they propagate immediately and the
   caller decides (give up, or repair + rewrite). *)
let read_retrying ?(attempts = 6) t ~sector ~count =
  let rec go n backoff_us =
    try read t ~sector ~count with
    | Read_error { transient = true; _ } when n + 1 < attempts ->
        Metrics.Counter.incr m_read_retries;
        Histar_util.Sim_clock.advance_us t.clock backoff_us;
        go (n + 1) (backoff_us *. 2.0)
  in
  go 0 100.0

let write t ~sector data =
  check_alive t;
  let sb = t.geometry.sector_bytes in
  if String.length data mod sb <> 0 then
    invalid_arg "Disk.write: data not a multiple of the sector size";
  let count = String.length data / sb in
  check_range t sector count;
  t.stats.writes <- t.stats.writes + 1;
  for i = 0 to count - 1 do
    Hashtbl.replace t.cache (sector + i) (String.sub data (i * sb) sb)
  done

let media_write_one t i data =
  (* The pre-write hook observes the media *before* this write applies:
     at [media_writes = n] it sees exactly the platter a crash at index
     n would leave behind (writes 0..n-1, volatile cache lost). *)
  (match t.pre_write_hook with Some f -> f () | None -> ());
  (match t.crash_after with
  | Some 0 ->
      t.is_crashed <- true;
      Hashtbl.reset t.cache;
      raise Crashed
  | Some n -> t.crash_after <- Some (n - 1)
  | None -> ());
  let data =
    match t.faults with
    | Some f -> Disk_faults.on_media_write f ~sector:i data
    | None -> data
  in
  t.media <- Bptree.insert t.media (Int64.of_int i) data;
  t.stats.sectors_written <- t.stats.sectors_written + 1;
  t.media_writes <- t.media_writes + 1;
  Metrics.Counter.incr m_media_sector_writes;
  match t.write_trace with
  | Some f -> f ~sector:i ~data
  | None -> ()

let flush t =
  check_alive t;
  t.stats.flushes <- t.stats.flushes + 1;
  Metrics.Counter.incr m_flushes;
  let dirty = Hashtbl.fold (fun i _ acc -> i :: acc) t.cache [] in
  let dirty = List.sort Int.compare dirty in
  if Trace.enabled () then
    Trace.emit
      ~ts_ns:(Histar_util.Sim_clock.now_ns t.clock)
      "disk.flush"
      [ ("dirty_sectors", string_of_int (List.length dirty)) ];
  (* A write barrier waits for the platter: charge half a rotation for
     any non-empty flush, on top of per-run seek and transfer costs.
     This is what makes per-file fsync pay dearly compared to one big
     group sync (the paper's 459s vs 2.57s LFS result). *)
  if dirty <> [] then begin
    Metrics.Counter.add m_rotate_ns
      (int_of_float (t.params.rotation_us /. 2.0 *. 1e3));
    Histar_util.Sim_clock.advance_us t.clock (t.params.rotation_us /. 2.0)
  end;
  (* Elevator scan: charge per contiguous run, write each sector. *)
  let rec runs = function
    | [] -> []
    | x :: rest ->
        let rec take_run last = function
          | y :: tl when y = last + 1 -> take_run y tl
          | tl -> (last, tl)
        in
        let last, tl = take_run x rest in
        (x, last - x + 1) :: runs tl
  in
  List.iter
    (fun (start, count) ->
      charge_io t ~sector:start ~count;
      for i = start to start + count - 1 do
        let data = Hashtbl.find t.cache i in
        media_write_one t i data
      done)
    (runs dirty);
  Hashtbl.reset t.cache

let set_crash_after_writes t n =
  assert (n >= 0);
  t.crash_after <- Some n

let crashed t = t.is_crashed
let media_writes t = t.media_writes
let set_write_trace t f = t.write_trace <- f
let set_pre_write_hook t f = t.pre_write_hook <- f

let reopen_after_crash t =
  if not t.is_crashed then invalid_arg "Disk.reopen_after_crash: not crashed";
  (* The surviving platter is the persistent map itself — no copy. *)
  {
    t with
    cache = Hashtbl.create 256;
    head = 0;
    crash_after = None;
    is_crashed = false;
    media_writes = 0;
    write_trace = None;
    pre_write_hook = None;
    stats = fresh_stats ();
  }

(* ---------- branchable media states ---------- *)

type snapshot = {
  snap_geometry : geometry;
  snap_params : params;
  snap_media : string Bptree.t;
}

let snapshot t =
  { snap_geometry = t.geometry; snap_params = t.params; snap_media = t.media }

let restore snap ~clock =
  {
    geometry = snap.snap_geometry;
    params = snap.snap_params;
    clock;
    media = snap.snap_media;
    cache = Hashtbl.create 256;
    stats = fresh_stats ();
    head = 0;
    crash_after = None;
    is_crashed = false;
    media_writes = 0;
    write_trace = None;
    pre_write_hook = None;
    faults = None;
  }

let fork t =
  check_alive t;
  {
    t with
    media = t.media;
    cache = Hashtbl.copy t.cache;
    stats =
      {
        reads = t.stats.reads;
        writes = t.stats.writes;
        sectors_read = t.stats.sectors_read;
        sectors_written = t.stats.sectors_written;
        flushes = t.stats.flushes;
        seeks = t.stats.seeks;
      };
    crash_after = None;
    write_trace = None;
    pre_write_hook = None;
  }
