(** Simulated sector-addressed disk.

    Substitutes for the paper's Seagate ST340014A (7200 RPM EIDE,
    ~58 MB/s media bandwidth, ~8.5 ms average seek). The model charges
    virtual time on the shared {!Histar_util.Sim_clock}:

    - a seek whenever the head moves, scaled by distance;
    - half-a-rotation of rotational latency after each seek;
    - per-sector transfer time at media bandwidth.

    Writes are buffered in a volatile write cache; {!flush} forces dirty
    sectors to the media in ascending order (elevator scan), coalescing
    contiguous runs so that sequential I/O gets near-full bandwidth and
    scattered synchronous writes pay a seek + rotation each — exactly
    the effect behind the paper's LFS sync-vs-group-sync results.

    Crash injection: {!set_crash_after_writes} makes the disk "lose
    power" after a given number of media sector writes. The write cache
    is discarded, subsequent operations raise {!Crashed}, and
    {!reopen_after_crash} yields the surviving media for recovery. *)

type t

exception Crashed

exception Read_error of { sector : int; transient : bool }
(** Raised by {!read} when the attached fault plan fails the access.
    [transient = true] means a retry may succeed (see
    {!read_retrying}); [transient = false] is a latent sector error
    that persists until the sector is rewritten. *)

type geometry = {
  sectors : int;  (** total sectors *)
  sector_bytes : int;  (** bytes per sector (512) *)
}

val default_geometry : geometry
(** 40 GB of 512-byte sectors, like the paper's drive. *)

type params = {
  seek_min_us : float;  (** track-to-track seek *)
  seek_max_us : float;  (** full-stroke seek *)
  rotation_us : float;  (** one full platter rotation (8333 for 7200 RPM) *)
  transfer_us_per_sector : float;  (** media bandwidth *)
}

val default_params : params

val create :
  ?geometry:geometry ->
  ?params:params ->
  ?faults:Histar_faults.Faults.Disk_faults.t ->
  clock:Histar_util.Sim_clock.t ->
  unit ->
  t

val geometry : t -> geometry

val clock : t -> Histar_util.Sim_clock.t
(** The virtual clock this disk charges service time against. *)

val read : t -> sector:int -> count:int -> string
(** Reads [count] sectors; sees the write cache. Unwritten sectors read
    as zeros. Raises {!Read_error} when an attached fault plan fails
    one of the sectors (dirty cached sectors are exempt — they are
    RAM). *)

val read_retrying : ?attempts:int -> t -> sector:int -> count:int -> string
(** Like {!read}, but retries transient errors up to [attempts] times
    (default 6) with exponential backoff charged on the virtual clock
    (100 µs base, doubling). Latent errors propagate immediately. *)

val write : t -> sector:int -> string -> unit
(** Buffers a write; the data length must be a multiple of the sector
    size. *)

val flush : t -> unit
(** Write barrier: force every dirty sector to the media. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable flushes : int;
  mutable seeks : int;
}

val stats : t -> stats
val reset_stats : t -> unit

val media_writes : t -> int
(** Lifetime count of sector writes that reached the media through this
    handle (monotonic; unaffected by {!reset_stats}). The crash-sweep
    driver records this after a clean run to enumerate every possible
    crash point. A handle from {!reopen_after_crash} starts at zero. *)

val set_write_trace : t -> (sector:int -> data:string -> unit) option -> unit
(** Observe every media sector write (after it lands). Used by the
    checking harness to record write traces; [None] disables. The hook
    does not fire for writes absorbed by the volatile cache. *)

(** {1 Fault injection} *)

val set_faults : t -> Histar_faults.Faults.Disk_faults.t option -> unit
(** Attach (or clear) a deterministic media-fault plan. When set,
    media writes may silently corrupt the stored bytes or mark the
    sector latent-bad, and reads consult the plan (see
    {!Histar_faults.Faults.Disk_faults}). *)

val faults : t -> Histar_faults.Faults.Disk_faults.t option

(** {1 Crash injection} *)

val set_crash_after_writes : t -> int -> unit
(** Crash once this many more media sector writes complete. *)

val crashed : t -> bool

val reopen_after_crash : t -> t
(** A fresh disk handle over the surviving media contents. Only valid
    after a crash. O(1): the media is a persistent map, so the new
    handle shares it structurally. *)

(** {1 Branchable media states}

    The durable media is a persistent (path-copying) B+-tree, so the
    platter contents at any instant are an O(1) value. {!snapshot}
    captures them, {!restore} rebuilds an independent disk over them,
    and {!fork} branches a live disk. Branches never alias: writes on
    one are invisible to the others. *)

type snapshot
(** Immutable capture of the durable media contents (the volatile write
    cache is deliberately excluded — it is what a crash loses). *)

val snapshot : t -> snapshot
(** O(1). May be taken at any time, including from inside a
    pre-write hook or after a crash. *)

val restore : snapshot -> clock:Histar_util.Sim_clock.t -> t
(** A fresh disk over the captured media: empty write cache, zeroed
    stats, head at sector 0, no crash scheduled, no faults — exactly
    the state {!reopen_after_crash} would produce had the original disk
    crashed at the capture point. O(1). *)

val fork : t -> t
(** Branch a live (non-crashed) disk: shares the media structurally,
    copies the volatile cache and per-instance stats, keeps the clock
    and fault plan, and clears any scheduled crash, write trace and
    pre-write hook on the branch. Writes on either side stay local. *)

val set_pre_write_hook : t -> (unit -> unit) option -> unit
(** Install a hook that fires immediately {e before} each media sector
    write applies (and before any scheduled crash for that write
    triggers). At the point the hook runs for write index [n]
    ([media_writes t = n]), the media holds exactly what a crash at
    index [n] would leave behind — so [snapshot] from inside the hook
    replaces crash-and-replay with an O(1) branch. [None] disables. *)
