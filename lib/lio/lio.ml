module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
open Histar_core.Types

exception Lio_error of string

let lio_errf fmt = Printf.ksprintf (fun s -> raise (Lio_error s)) fmt

(* ---------- planted leaks (tests only) ---------- *)

type weaken = Weaken_lio_catch | Weaken_toLabeled_result

let weaken_to_string = function
  | Weaken_lio_catch -> "Weaken_lio_catch"
  | Weaken_toLabeled_result -> "Weaken_toLabeled_result"

(* Domain-local: twin-pair check cells run concurrently on the lib/par
   pool, each planting (or clearing) its own leak without perturbing
   its siblings. A kernel run stays on the domain that started it, so
   the evaluator below always reads the switch its own cell set. *)
let weaken_key : weaken option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let weaken () = !(Domain.DLS.get weaken_key)
let set_weaken w = Domain.DLS.get weaken_key := w

(* ---------- context ---------- *)

type ctx = { scratches : (Label.t * oid) list }

let init ?(levels = []) ~container () =
  let all = Label.make Level.L1 :: levels in
  let scratches =
    List.mapi
      (fun i lbl ->
        if not (Label.is_object_label lbl) then
          lio_errf "init: scratch level %s is not an object label"
            (Label.to_string lbl);
        let o =
          Sys.container_create ~container ~label:lbl ~quota:1_048_576L
            (Printf.sprintf "lio scratch %d" i)
        in
        (lbl, o))
      all
  in
  { scratches }

(* Scope gates (and their return gates) go in the first scratch the
   thread can modify at its current label: a tainted thread is denied
   the low scratch by the kernel, so secret-dependent numbers of scope
   excursions never perturb low-visible containers. *)
let scratch_for ctx lt =
  match
    List.find_opt (fun (lbl, _) -> Label.can_modify ~thread:lt ~obj:lbl)
      ctx.scratches
  with
  | Some (_, o) -> o
  | None ->
      lio_errf "no scratch container modifiable at %s (extend init ~levels)"
        (Label.to_string lt)

(* Refs go in the lowest scratch that is at least as tainted as the
   ref itself, so observing a ref never requires reading a container
   above the ref's own label. *)
let scratch_for_object ctx l =
  match List.find_opt (fun (lbl, _) -> Label.leq l lbl) ctx.scratches with
  | Some (_, o) -> o
  | None ->
      lio_errf "no scratch container at or above %s (extend init ~levels)"
        (Label.to_string l)

(* ---------- the floating label ---------- *)

let current_label () = Sys.self_label ()
let current_clearance () = Sys.self_clearance ()

(* Pointwise ⊔ of the current label with [l], except that ⋆ entries
   are privilege, not taint: a plain ⊔ would let the *public* default
   level 1 clobber ownership (⋆ < 1 in the level order). Ownership
   survives joins at or below the public level; only an explicit taint
   above it (the secret actually flowing in) clobbers the ⋆ — that is
   the LIO discipline: reading your own secret still taints you. *)
let taint l =
  let cur = Sys.self_label () in
  let next =
    Category.Set.fold
      (fun c acc ->
        if Level.leq (Label.get l c) Level.L1 then Label.set acc c Level.Star
        else acc)
      (Label.owned cur) (Label.lub cur l)
  in
  if not (Label.equal next cur) then Sys.self_set_label next

(* ---------- labeled values ---------- *)

type 'a labeled = { lab : Label.t; payload : ('a, exn) Stdlib.result }

let check_between ~op l =
  let cur = Sys.self_label () in
  if not (Label.leq cur l) then
    lio_errf "%s: label %s is below the current label %s" op
      (Label.to_string l) (Label.to_string cur);
  let clear = Sys.self_clearance () in
  if not (Label.leq l clear) then
    lio_errf "%s: label %s exceeds the clearance %s" op (Label.to_string l)
      (Label.to_string clear)

let label l v =
  check_between ~op:"label" l;
  { lab = l; payload = Ok v }

let label_of lv = lv.lab

let unlabel lv =
  taint lv.lab;
  match lv.payload with Ok v -> v | Error e -> raise e

(* ---------- scoped excursions ---------- *)

(* Return from a scope excursion. This is Sys.gate_return with two
   deliberate differences: the return-gate label is already known
   (we minted the gate ourselves, at [pre_l]), and the requested
   clearance is the pre-scope clearance rather than the current one —
   to_labeled lowers the clearance for the duration of the block, and
   the plain gate_return would leave it lowered. Both are legal under
   the §3.5 checks because the return gate's own clearance is pre_c. *)
let scope_epilogue ~keep_acquired ~pre_l ~pre_c =
  let self = Sys.self_label () in
  let self_dropped =
    if keep_acquired then self
    else
      Category.Set.fold
        (fun c acc ->
          if Label.owns pre_l c then acc else Label.set acc c Level.L1)
        (Label.owned self) self
  in
  let lr =
    Label.lower_star (Label.lub (Label.raise_j self_dropped) (Label.raise_j pre_l))
  in
  match Sys.self_get_return_gate () with
  | None -> Sys.self_halt ()
  | Some rg -> Sys.gate_enter ~gate:rg ~label:lr ~clearance:pre_c ()

(* Run [f] inside a one-shot gate excursion with clearance [bound].
   The return gate is minted by gate_call at [pre_l] — including every
   ⋆ the caller holds — before privileges drop, so returning launders
   taint in caller-owned categories back to ⋆ (§3.5); taint in
   non-owned categories survives the ⊔ and sticks to the caller. *)
let scope ctx ~bound ~keep_acquired f =
  let pre_l = Sys.self_label () in
  let pre_c = Sys.self_clearance () in
  let scratch = scratch_for ctx pre_l in
  let cell = ref None in
  let gid =
    Sys.gate_create ~one_shot:true ~container:scratch ~label:pre_l
      ~clearance:pre_c ~quota:4096L ~name:"lio scope" (fun () ->
        (cell :=
           let out = try Ok (f ()) with e -> Error e in
           Some (out, Sys.self_label ()));
        scope_epilogue ~keep_acquired ~pre_l ~pre_c)
  in
  Sys.gate_call ~gate:(centry scratch gid) ~label:pre_l ~clearance:bound
    ~return_container:scratch ~return_label:pre_l ~return_clearance:pre_c ();
  match !cell with
  | Some (out, final) -> (out, final)
  | None -> raise (Lio_error "scope: excursion did not run")

let with_scope ctx f =
  scope ctx ~bound:(Sys.self_clearance ()) ~keep_acquired:true f

let to_labeled ctx l f =
  check_between ~op:"to_labeled" l;
  let weak = weaken () = Some Weaken_toLabeled_result in
  (* Lowering the clearance to [l] for the duration of the block makes
     the kernel itself refuse any taint beyond [l] inside it: the
     attempt raises Kernel_error at the offending unlabel, where it is
     captured like any other exception — at a label that, unlike the
     would-be taint, still flows to [l]. *)
  let bound = if weak then Sys.self_clearance () else l in
  let out, final = scope ctx ~bound ~keep_acquired:false f in
  if (not weak) && not (Label.leq final l) then
    lio_errf "to_labeled: block finished at %s, above its label %s"
      (Label.to_string final) (Label.to_string l);
  { lab = l; payload = out }

let catch ctx f h =
  let out, final =
    scope ctx ~bound:(Sys.self_clearance ()) ~keep_acquired:true f
  in
  (* The scope restored the label (and any dropped privileges); the
     caller is about to use the outcome unlabeled, so re-apply the
     block's final taint — on the exception path this is the Stefan et
     al. catch discipline: the handler runs at the throw-point label. *)
  match out with
  | Ok v ->
      taint final;
      v
  | Error e ->
      if weaken () <> Some Weaken_lio_catch then taint final;
      h e

(* ---------- labeled references ---------- *)

type lref = { r_label : Label.t; r_entry : centry }

let new_ref ctx ?(name = "lio ref") l v =
  check_between ~op:"new_ref" l;
  let scratch = scratch_for_object ctx l in
  let o =
    Sys.segment_create ~container:scratch ~label:l ~quota:4096L
      ~len:(String.length v) name
  in
  let r = { r_label = l; r_entry = centry scratch o } in
  if String.length v > 0 then Sys.segment_write r.r_entry v;
  r

let ref_label r = r.r_label
let ref_entry r = r.r_entry

let read_ref r =
  taint r.r_label;
  Sys.segment_read r.r_entry ()

let write_ref r v =
  let cur = Sys.self_label () in
  if not (Label.leq cur r.r_label) then
    lio_errf "write_ref: current label %s does not flow to ref label %s"
      (Label.to_string cur)
      (Label.to_string r.r_label);
  if Sys.segment_size r.r_entry <> String.length v then
    Sys.segment_resize r.r_entry (String.length v);
  if String.length v > 0 then Sys.segment_write r.r_entry v
