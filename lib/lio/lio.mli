(** LIO-style floating-label information flow control over HiStar gates.

    A thin, untrusted user-level library in the style of Stefan et
    al.'s LIO (Haskell, ICFP 2011 / "Flexible dynamic information flow
    control in the presence of exceptions"), built entirely on the
    kernel primitives of §3: the {e current label} of an LIO
    computation is simply the thread's HiStar label, raised by
    [unlabel]/[taint] with a plain ⊔ (deliberately clobbering ⋆
    ownership, so the kernel's own no-write-down checks back up every
    library check), and restored at scope boundaries by the gate
    mechanism of §3.5: each {!to_labeled}/{!catch} block runs inside a
    one-shot gate excursion whose return gate — minted at the
    pre-block label {e before} privileges are dropped — launders taint
    in caller-owned categories back to ⋆ on the way out.

    Because the library is untrusted, its guarantees are exactly the
    LIO discipline, no more: a computation that owns a category (the
    usual case — LIO contexts mint their own secrecy categories) is
    {e kernel-permitted} to leak it, and only the floating-label
    bookkeeping here stands in the way. The twin-trace noninterference
    harness in [lib/check/noninterference.ml] tests that discipline
    end to end, and the {!weaken} switches below plant the two
    library-level leaks it must catch. *)

module Label = Histar_label.Label
module Category = Histar_label.Category
open Histar_core.Types

exception Lio_error of string
(** A library-level IFC violation (the kernel was never asked). *)

(** {1 Context} *)

type ctx
(** Scratch placement for scope gates and refs: one container per
    taint level, pre-created by {!init} because a thread that is
    already tainted can only create objects in a container at its
    taint (§6.1's tainted-workspace pattern). *)

val init : ?levels:Label.t list -> container:oid -> unit -> ctx
(** Create the scratch containers under [container]: one at [{1}]
    (always, first) plus one per label in [levels] (each must satisfy
    {!Label.is_object_label}). Call while still untainted. *)

val scratch_for : ctx -> Label.t -> oid
(** The first scratch container the given thread label can modify;
    raises {!Lio_error} if none fits (extend [levels] at {!init}). *)

(** {1 The floating label} *)

val current_label : unit -> Label.t
val current_clearance : unit -> Label.t

val taint : Label.t -> unit
(** Raise the current label to [current ⊔ l] — a plain pointwise ⊔,
    so taint in a category clobbers ⋆ ownership until the enclosing
    scope returns. Raises [Kernel_error] if the result would exceed
    the thread's clearance. *)

(** {1 Labeled values} *)

type 'a labeled
(** An immutable value (or a captured exception) protected by a label;
    inspecting it requires raising the current label to at least that
    label. *)

val label : Label.t -> 'a -> 'a labeled
(** [label l v] requires [current ⊑ l ⊑ clearance] (writing below the
    current label would be a leak); raises {!Lio_error} otherwise. *)

val label_of : 'a labeled -> Label.t
(** The label itself is public (it was chosen at or below the
    creator's clearance while at or above its current label). *)

val unlabel : 'a labeled -> 'a
(** Taints the current label with the value's label, then returns the
    value — or re-raises the captured exception if the labeled value
    holds one (a {!to_labeled} block that threw). *)

(** {1 Scoped excursions} *)

val with_scope : ctx -> (unit -> 'a) -> ('a, exn) Stdlib.result * Label.t
(** The primitive beneath {!to_labeled} and {!catch}: run the thunk
    inside a one-shot gate excursion and return its outcome plus the
    label at which the thunk finished (or threw). On return the
    current label is the pre-scope label joined with any taint the
    thunk picked up in categories the caller does {e not} own —
    owned-category taint is laundered by the gate return, and ⋆s the
    thunk acquired (e.g. through an ownership-granting gate like
    §6.2's check gate) are kept. The caller is responsible for
    re-applying that taint if the outcome is to be used unlabeled
    ({!catch} does; {!to_labeled} instead labels it). *)

val to_labeled : ctx -> Label.t -> (unit -> 'a) -> 'a labeled
(** [to_labeled ctx l f] requires [current ⊑ l ⊑ clearance], then runs
    [f] in a scope whose {e clearance is temporarily lowered to l}, so
    the kernel itself refuses any attempt to taint beyond [l] inside
    the block (the attempt raises [Kernel_error] {e inside} the block,
    where it is captured like any other exception). The outcome —
    value or exception — comes back labeled [l], and the current label
    is restored to its pre-block value. Unlike {!with_scope}/{!catch},
    the block is fully confined: ⋆s it acquired are dropped on exit. *)

val catch : ctx -> (unit -> 'a) -> (exn -> 'a) -> 'a
(** [catch ctx f h]: run [f] in a scope (full clearance); whether it
    returns or throws, re-taint the current label to the label at
    which [f] finished — the Stefan et al. catch discipline: the
    handler (and the fall-through path) runs at the throw-point label,
    so an exception cannot smuggle secret-dependent control flow back
    to a less tainted context. The scope also checkpoints privileges:
    even if [f] dropped ⋆s, the caller gets its own back. *)

(** {1 Labeled references}

    Segment-backed mutable cells, so every access is additionally
    checked by the kernel: the segment carries the ref's label and
    lives in the scratch container for that label. *)

type lref

val new_ref : ctx -> ?name:string -> Label.t -> string -> lref
(** Requires [current ⊑ l ⊑ clearance], like {!label}. [name] becomes
    the segment's descrip — the twin-trace harness keys its canonical
    low projection on descrips, never on raw oids. *)

val ref_label : lref -> Label.t
val ref_entry : lref -> centry

val read_ref : lref -> string
(** Taints the current label with the ref's label, then reads. *)

val write_ref : lref -> string -> unit
(** No write down: requires [current ⊑ l] ({!Lio_error} otherwise —
    and the kernel's segment-write check stands behind it). *)

(** {1 Planted leaks (tests only)} *)

type weaken =
  | Weaken_lio_catch
      (** [catch] skips the re-taint on the exception path: the handler
          runs at the laundered pre-scope label, so secret-dependent
          throws become publicly visible control flow. *)
  | Weaken_toLabeled_result
      (** [to_labeled] runs the block at full clearance and skips the
          final ⊑ l check: a block that reads above [l] yields an
          under-labeled result. *)

val set_weaken : weaken option -> unit
(** Library-level analogue of the kernel's weaken switches: each
    disables exactly one floating-label check. The twin-trace
    noninterference harness must catch both as low-projection
    divergences; neither is detectable by the kernel (the leaking
    thread owns the category it leaks). *)

val weaken_to_string : weaken -> string
