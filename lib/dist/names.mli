(** Per-node category exporter/importer: maps local 61-bit category
    names to cluster-scoped wire names and back, and records which
    nodes may speak for (assert ⋆ of) each category.

    A wire name is [encrypt64 ((origin node id << 44) | export seq)]
    under the shared cluster key: globally unique across nodes, opaque
    on the wire, and origin-recoverable by any key-holder. Trust to
    assert ownership follows the origin node plus any nodes the origin
    registered in the cluster {!Directory} (a stand-in for out-of-band
    key exchange between mutually trusting kernels, §8 of the
    paper). *)

module Category = Histar_label.Category

(** Cluster-wide trust assertions, shared by all nodes (models
    out-of-band PKI, not wire traffic). *)
module Directory : sig
  type t

  val create : unit -> t

  val add_trust : t -> wire:int64 -> node:int -> unit
  (** The origin asserts that [node] may speak for [wire]. *)

  val trusted : t -> wire:int64 -> node:int -> bool
end

type entry = {
  e_wire : int64;
  e_cat : Category.t;  (** the local twin on this node *)
  e_origin : int;  (** node that minted the wire name *)
  mutable e_grant : Histar_core.Types.centry option;
      (** persistent grant gate re-granting ⋆[e_cat] on this node *)
}

type t

val create : node_id:int -> key:int64 -> directory:Directory.t -> t
(** [node_id] must fit in 16 bits; [key] is the shared cluster key. *)

val node_id : t -> int
val directory : t -> Directory.t

val mint : t -> int64
(** Fresh wire name scoped to this node (advances the export seq). *)

val origin : t -> int64 -> int
(** Decrypt a wire name's origin node id. *)

val find_wire : t -> int64 -> entry option
val find_local : t -> Category.t -> entry option

val record : t -> wire:int64 -> cat:Category.t -> ?grant:Histar_core.Types.centry -> unit -> entry
(** Bind [wire] to local twin [cat] (used when importing a foreign
    name: the local [cat] is freshly created by the importer). *)

val set_grant : entry -> Histar_core.Types.centry -> unit

val export : t -> ?trust:int list -> Category.t -> entry
(** Mint (or look up) the wire name for a locally-owned category and
    register [trust]ed speakers with the directory. Idempotent; repeat
    calls may extend the trust list. *)

val trusted_for : t -> wire:int64 -> node:int -> bool
(** May [node] assert ⋆ for [wire]? True for the origin node and for
    directory-listed speakers. *)

val exported : t -> (int64 * Category.t) list
(** All wire bindings known to this node, sorted by wire name. *)
