(** Deterministic driver for several independent kernels (cluster
    nodes) plus kernel-less client stacks, each with its own virtual
    clock. Rounds are reproducible functions of the seeds: runnable
    kernels are sliced in registration order, and when all are idle
    exactly one timer fires — the one with the smallest wait
    *relative to its own host's clock* (ties by registration
    order). *)

type t

val create : unit -> t
val add_kernel : t -> Histar_core.Kernel.t -> unit

val remove_kernel : t -> Histar_core.Kernel.t -> unit
(** Node crash: stop scheduling the kernel and stop honoring its
    timers — volatile state is never consulted again.  Re-adding a
    recovered kernel with {!add_kernel} appends it to registration
    order (part of the deterministic schedule). *)

val global_now_ns : t -> int64
(** Global virtual now — the maximum over every clock in the
    cluster.  Crash schedules ([crash:node=..,at=..] entries) are
    written against this axis. *)

val sync_clocks : t -> unit
(** Jointly advance every clock to {!global_now_ns} — what a timer
    firing does implicitly, exposed for hosts that want a clean time
    baseline after un-driven work (e.g. a build that charged disk
    time to one node's clock during provisioning). *)

val set_on_tick : t -> (int64 -> unit) option -> unit
(** Driver hook invoked with [global_now_ns] once per {!drive} round
    (before slicing).  Used to pump node-crash fault plans: the hook
    kills/restarts nodes when their virtual-time deadlines pass. *)

val add_host :
  t -> stack:Histar_net.Stack.t -> clock:Histar_util.Sim_clock.t -> unit
(** Register an external (kernel-less) endpoint whose retransmission
    timers the driver must honor: advancing [clock] to the stack's
    earliest RTO deadline and ticking it counts as firing a timer. *)

val kernels : t -> Histar_core.Kernel.t list

val settle : ?max_rounds:int -> t -> unit
(** Run every kernel to quiescence without firing timers: boot work
    (netd init, service registration, listeners parking in accept)
    completes before any cross-node traffic starts, so a connection
    attempt cannot race a listener that has not yet registered. *)

val drive :
  ?slice:int -> ?max_rounds:int -> t -> until:(unit -> bool) -> unit -> bool
(** Run until [until ()] (checked every round — it doubles as the
    caller's poll/pump hook) or deadlock/exhaustion; [true] iff
    [until] held. [slice] bounds consecutive steps per kernel per
    round so no node starves another. *)
