(* Wire format for label-preserving remote gate calls.

   Labels travel with every message as lists of (wire name, level rank)
   pairs plus a default rank — the same numeric view [Label.ranked]
   exposes locally, except that category names are the cluster-scoped
   wire names minted by {!Names}, never raw local category values
   (local names are per-kernel allocator state and would collide or
   leak across nodes, §8 of the paper).

   Transport framing is [u32 length | i64 nonce | sealed body]: the
   nonce rides in the clear so the receiver can key the {!Seal}
   keystream, the body is sealed and tagged so a wire eavesdropper on
   the shared hub sees no label names or payload bytes and a tamperer
   is detected at unseal. Framing is self-delimiting over a TCP byte
   stream; {!deframe} peels one message off a reassembly buffer. *)

module Codec = Histar_util.Codec

type wlabel = { wl_entries : (int64 * int) list; wl_default : int }

type call = {
  c_service : string;
  c_from : int;  (** sender node id, authenticated by the shared key *)
  c_label : wlabel;  (** caller's thread label, wire names *)
  c_clear : wlabel;  (** caller's observation capacity, wire names *)
  c_args : string;
}

type status = S_ok | S_refused | S_error

type reply = {
  r_status : status;
  r_label : wlabel;  (** label of the replying thread, wire names *)
  r_grants : int64 list;  (** wire names granted through the return *)
  r_payload : string;  (** page bytes, or the refusal/error message *)
}

type msg = Call of call | Reply of reply

let enc_wlabel e wl =
  Codec.Enc.list e
    (fun e (w, r) ->
      Codec.Enc.i64 e w;
      Codec.Enc.u8 e r)
    wl.wl_entries;
  Codec.Enc.u8 e wl.wl_default

let dec_wlabel d =
  let wl_entries =
    Codec.Dec.list d (fun d ->
        let w = Codec.Dec.i64 d in
        let r = Codec.Dec.u8 d in
        (w, r))
  in
  let wl_default = Codec.Dec.u8 d in
  { wl_entries; wl_default }

let status_to_u8 = function S_ok -> 0 | S_refused -> 1 | S_error -> 2

let status_of_u8 = function
  | 0 -> S_ok
  | 1 -> S_refused
  | 2 -> S_error
  | n -> Fmt.invalid_arg "Wire.status_of_u8: %d" n

let encode_msg m =
  let e = Codec.Enc.create () in
  (match m with
  | Call c ->
      Codec.Enc.u8 e 1;
      Codec.Enc.str e c.c_service;
      Codec.Enc.u32 e c.c_from;
      enc_wlabel e c.c_label;
      enc_wlabel e c.c_clear;
      Codec.Enc.str e c.c_args
  | Reply r ->
      Codec.Enc.u8 e 2;
      Codec.Enc.u8 e (status_to_u8 r.r_status);
      enc_wlabel e r.r_label;
      Codec.Enc.list e Codec.Enc.i64 r.r_grants;
      Codec.Enc.str e r.r_payload);
  Codec.Enc.to_string e

let decode_msg s =
  let d = Codec.Dec.of_string s in
  match Codec.Dec.u8 d with
  | 1 ->
      let c_service = Codec.Dec.str d in
      let c_from = Codec.Dec.u32 d in
      let c_label = dec_wlabel d in
      let c_clear = dec_wlabel d in
      let c_args = Codec.Dec.str d in
      Call { c_service; c_from; c_label; c_clear; c_args }
  | 2 ->
      let r_status = status_of_u8 (Codec.Dec.u8 d) in
      let r_label = dec_wlabel d in
      let r_grants = Codec.Dec.list d Codec.Dec.i64 in
      let r_payload = Codec.Dec.str d in
      Reply { r_status; r_label; r_grants; r_payload }
  | n -> Fmt.invalid_arg "Wire.decode_msg: bad tag %d" n

(* --- transport framing --- *)

let frame_raw ~nonce body =
  let e = Codec.Enc.create () in
  Codec.Enc.u32 e (8 + String.length body);
  Codec.Enc.i64 e nonce;
  Codec.Enc.raw e body;
  Codec.Enc.to_string e

let deframe buf =
  if String.length buf < 4 then None
  else
    let n = Char.code buf.[0] lor (Char.code buf.[1] lsl 8)
            lor (Char.code buf.[2] lsl 16) lor (Char.code buf.[3] lsl 24) in
    if n < 8 then Fmt.invalid_arg "Wire.deframe: runt frame (%d)" n
    else if String.length buf < 4 + n then None
    else
      let d = Codec.Dec.of_string buf in
      let _len = Codec.Dec.u32 d in
      let nonce = Codec.Dec.i64 d in
      let body = Codec.Dec.raw d (n - 8) in
      Some (nonce, body, String.sub buf (4 + n) (String.length buf - 4 - n))

let seal_msg seal ~nonce m =
  frame_raw ~nonce (Histar_crypto.Seal.seal_tagged seal ~nonce (encode_msg m))

let unseal_msg seal ~nonce body =
  match Histar_crypto.Seal.unseal_tagged seal ~nonce body with
  | None -> None
  | Some plain -> (
      match decode_msg plain with
      | m -> Some m
      | exception _ -> None)
