(* Label translation and the remote-gate admission check.

   [to_wire] rewrites a local label into wire names — every category
   with a non-default level must already be exported or imported on
   this node, otherwise the label *cannot* be expressed on the wire
   and the message must not leave (the information-flow analogue of a
   dangling pointer: an unexported taint category has no cluster-wide
   meaning, so dropping the entry would silently declassify).

   [of_wire] rewrites an incoming wire label into local categories via
   a caller-supplied resolver (the {!Distd} conn thread, which creates
   a fresh local twin plus grant gate on first sight). Ownership (⋆)
   is honored only when [trusted] says the sending node may speak for
   that wire name; otherwise the entry is clamped to level 3 — the
   most pessimistic taint — so an untrusted relay can raise but never
   lower the secrecy of data it handles. J on the wire is likewise
   clamped: integrity assertions do not transfer between kernels.

   [admit] is the remote twin of the kernel/model gate-invocation
   check and mirrors [Model.check_gate_invoke] clause for clause,
   including the refusal strings, so the conformance suite can check
   that a remote call is refused exactly when the local model refuses
   the same invocation. *)

module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category

let star_to_l3 l =
  Category.Set.fold
    (fun c acc -> Label.set acc c Level.L3)
    (Label.owned l) l

let cap ~label ~clearance = Label.lub clearance (star_to_l3 label)

let to_wire names l =
  let entries, default = Label.ranked l in
  let rec go acc = function
    | [] -> Ok { Wire.wl_entries = List.rev acc; wl_default = default }
    | (craw, rank) :: rest -> (
        let c = Category.of_int64 craw in
        match Names.find_local names c with
        | Some e -> go ((e.Names.e_wire, rank) :: acc) rest
        | None ->
            Error
              (Fmt.str "category %s not exported" (Category.to_string c)))
  in
  go [] entries

let clamp_rank ~trusted rank =
  (* Untrusted ⋆, wire J, and out-of-range ranks all degrade to L3:
     taint is honored, privilege is not, garbage is pessimism. *)
  if rank < 0 || rank > Level.to_rank Level.J then Level.to_rank Level.L3
  else if rank = Level.to_rank Level.Star then
    if trusted then rank else Level.to_rank Level.L3
  else if rank = Level.to_rank Level.J then Level.to_rank Level.L3
  else rank

let of_wire ~resolve ~trusted (wl : Wire.wlabel) =
  let default =
    let d = clamp_rank ~trusted:false wl.wl_default in
    Level.of_rank d
  in
  List.fold_left
    (fun acc (w, rank) ->
      let c = resolve w in
      let lvl = Level.of_rank (clamp_rank ~trusted:(trusted w) rank) in
      Label.set acc c lvl)
    (Label.make default) wl.wl_entries

let admit ~lt ~ct ~lg ~gclear ~rl ~rc ~lv =
  if not (Label.leq lt gclear) then Error "gate: L_T not <= C_G"
  else if not (Label.leq lt lv) then Error "gate: L_T not <= L_V"
  else
    let floor =
      Label.lower_star (Label.lub (Label.raise_j lt) (Label.raise_j lg))
    in
    if not (Label.leq floor rl) then Error "gate: floor not <= L_R"
    else if not (Label.leq rl rc) then Error "gate: L_R not <= C_R"
    else if not (Label.leq rc (Label.lub ct gclear)) then
      Error "gate: C_R not <= C_T | C_G"
    else Ok ()
