(* Consistent-hash placement ring for sharded services.

   Shards users (keyed by their login category's wire name) across D
   db nodes.  Placement is pure: the same (wire name, member set,
   vnode count) always maps to the same owner, on every node, with no
   coordination — the balancer and every app node compute routes
   locally and agree.

   The ring also carries the *handoff* state used during rebalance: a
   point (one vnode arc) can be marked draining while its records
   migrate from the old owner to the new one.  Routing a key whose
   owning arc is draining returns [`Handoff] — the caller must refuse
   admission (never mis-route) until [commit_handoff] lands.  This is
   the "refused during handoff" discipline: a request is either served
   by the node that provably owns the user's categories, or refused
   outright; it is never answered by a node whose export trust for
   those categories is in flux. *)

type point = {
  hash : int64;  (* position on the ring *)
  node : int;  (* owning member *)
  vidx : int;  (* vnode index within the member, for debug *)
  mutable draining : (int * int) option;
      (* (old_owner, new_owner) while a handoff is in flight *)
}

type t = {
  mutable points : point array;  (* sorted by unsigned hash *)
  vnodes : int;
  mutable members : int list;  (* live members, ascending *)
}

module Checksum = Histar_util.Checksum

let ucompare (a : int64) (b : int64) =
  (* unsigned 64-bit compare: flip the sign bit *)
  Int64.(compare (logxor a min_int) (logxor b min_int))

(* FNV-1a avalanches poorly on short, similar strings (consecutive
   user names differ in a couple of low bytes, and all of a node's
   vnode points share a prefix pattern), which degenerates the ring:
   every key lands on one member.  A 64-bit mix finalizer (the
   murmur3 fmix64 constants) scrambles the FNV output so positions
   spread uniformly. *)
let mix64 (h : int64) =
  let open Int64 in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xff51afd7ed558ccdL in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xc4ceb9fe1a85ec53L in
  logxor h (shift_right_logical h 33)

let point_hash ~node ~vidx =
  mix64 (Checksum.fnv64 (Printf.sprintf "ring:%d:%d" node vidx))

let key_hash key = mix64 (Checksum.fnv64 ("key:" ^ key))

let rebuild t =
  let pts =
    List.concat_map
      (fun node ->
        List.init t.vnodes (fun vidx ->
            { hash = point_hash ~node ~vidx; node; vidx; draining = None }))
      t.members
  in
  let arr = Array.of_list pts in
  Array.sort (fun a b -> ucompare a.hash b.hash) arr;
  t.points <- arr

let create ?(vnodes = 16) members =
  let members = List.sort_uniq compare members in
  let t = { points = [||]; vnodes; members } in
  rebuild t;
  t

let members t = t.members

let add_member t node =
  if not (List.mem node t.members) then (
    t.members <- List.sort_uniq compare (node :: t.members);
    rebuild t)

let remove_member t node =
  if List.mem node t.members then (
    t.members <- List.filter (fun n -> n <> node) t.members;
    rebuild t)

(* First point clockwise from [h] (binary search over the sorted
   array, wrapping past the top). *)
let successor t (h : int64) =
  let n = Array.length t.points in
  if n = 0 then None
  else
    let lo = ref 0 and hi = ref n in
    (* smallest index with points.(i).hash >= h *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ucompare t.points.(mid).hash h < 0 then lo := mid + 1 else hi := mid
    done;
    Some t.points.(if !lo = n then 0 else !lo)

let owner t key =
  match successor t (key_hash key) with
  | None -> None
  | Some p -> Some p.node

let route t key =
  match successor t (key_hash key) with
  | None -> `No_members
  | Some p -> (
      match p.draining with
      | None -> `Node p.node
      | Some (old_owner, new_owner) -> `Handoff (old_owner, new_owner))

(* Handoff: mark every arc owned by [node] (or the single arc covering
   [key], when given) as draining toward [target].  Routing through a
   draining arc refuses; commit flips ownership and clears the mark. *)

let begin_handoff t ~key ~target =
  match successor t (key_hash key) with
  | None -> Error "ring: no members"
  | Some p ->
      if p.node = target then Error "ring: target already owns arc"
      else if p.draining <> None then Error "ring: arc already draining"
      else (
        p.draining <- Some (p.node, target);
        Ok ())

let commit_handoff t ~key =
  match successor t (key_hash key) with
  | None -> Error "ring: no members"
  | Some p -> (
      match p.draining with
      | None -> Error "ring: arc not draining"
      | Some (_old, new_owner) ->
          (* The arc's points array entry changes owner in place; the
             member set is unchanged (both nodes stay live). *)
          let q = { p with node = new_owner; draining = None } in
          let idx = ref (-1) in
          Array.iteri (fun i pt -> if pt == p then idx := i) t.points;
          t.points.(!idx) <- q;
          Ok new_owner)

let abort_handoff t ~key =
  match successor t (key_hash key) with
  | None -> Error "ring: no members"
  | Some p -> (
      match p.draining with
      | None -> Error "ring: arc not draining"
      | Some _ ->
          p.draining <- None;
          Ok ())

let draining_count t =
  Array.fold_left (fun acc p -> if p.draining <> None then acc + 1 else acc) 0 t.points

(* Keys from [keys] whose owning arc belongs to [node] — used by a
   rebalance to enumerate what must move. *)
let keys_owned t ~node keys = List.filter (fun k -> owner t k = Some node) keys
