(* Per-node category exporter/importer.

   Local category names are per-kernel allocator state (61-bit values
   from Category_gen): two kernels will mint colliding values, and raw
   names would also leak allocation order across the wire. Each node
   therefore maps local categories to cluster-scoped *wire names*:
   encrypt64 over the shared cluster key of [(origin node id << 44) |
   per-node export counter]. Wire names are globally unique (the
   cipher is a permutation and plaintexts are disjoint per node),
   unforgeable-looking on the wire, and any key-holder can recover the
   origin node by decrypting — which is what trust decisions key off.

   Trust: ownership (⋆) asserted for a wire name in an incoming label
   is honored only when the sender is the category's origin node or a
   node the origin listed in the cluster {!Directory} (a stand-in for
   out-of-band key distribution between mutually trusting kernels,
   §8). Anyone else's ⋆ is clamped to level 3 by {!Proto.of_wire}:
   an untrusted node can taint data it relays but can never launder
   another node's category.

   The table also records, per imported category, the *grant gate* a
   {!Distd} conn thread creates when it first materializes the local
   twin: a persistent gate whose entry does [gate_return ~keep:[c]],
   so later threads on the node can re-acquire ⋆c (the §6.2 check-gate
   idiom). The gate is how ownership outlives the short-lived conn
   threads that import categories. *)

module Category = Histar_label.Category
module Block_cipher = Histar_crypto.Block_cipher

module Directory = struct
  (* Cluster-wide trust assertions: origin says [node] may speak for
     [wire]. Shared host-side state modeling out-of-band PKI. *)
  type t = (int64, int list ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add_trust t ~wire ~node =
    match Hashtbl.find_opt t wire with
    | Some l -> if not (List.mem node !l) then l := node :: !l
    | None -> Hashtbl.replace t wire (ref [ node ])

  let trusted t ~wire ~node =
    match Hashtbl.find_opt t wire with
    | Some l -> List.mem node !l
    | None -> false
end

type entry = {
  e_wire : int64;
  e_cat : Category.t;
  e_origin : int;
  mutable e_grant : Histar_core.Types.centry option;
}

type t = {
  node_id : int;
  cipher : Block_cipher.t;
  directory : Directory.t;
  mutable next_export : int;
  by_wire : (int64, entry) Hashtbl.t;
  by_cat : (Category.t, entry) Hashtbl.t;
}

let node_bits = 44

let create ~node_id ~key ~directory =
  if node_id < 0 || node_id lsr 16 <> 0 then
    Fmt.invalid_arg "Names.create: node id %d out of range" node_id;
  {
    node_id;
    cipher = Block_cipher.create ~key;
    directory;
    next_export = 0;
    by_wire = Hashtbl.create 32;
    by_cat = Hashtbl.create 32;
  }

let node_id t = t.node_id
let directory t = t.directory

let mint t =
  let seq = t.next_export in
  t.next_export <- seq + 1;
  Block_cipher.encrypt64 t.cipher
    (Int64.logor
       (Int64.shift_left (Int64.of_int t.node_id) node_bits)
       (Int64.of_int seq))

let origin t wire =
  Int64.to_int
    (Int64.shift_right_logical (Block_cipher.decrypt64 t.cipher wire) node_bits)

let find_wire t wire = Hashtbl.find_opt t.by_wire wire
let find_local t cat = Hashtbl.find_opt t.by_cat cat

let record t ~wire ~cat ?grant () =
  let e = { e_wire = wire; e_cat = cat; e_origin = origin t wire; e_grant = grant } in
  Hashtbl.replace t.by_wire wire e;
  Hashtbl.replace t.by_cat cat e;
  e

let set_grant e ce = e.e_grant <- Some ce

let export t ?(trust = []) cat =
  match find_local t cat with
  | Some e ->
      List.iter (fun n -> Directory.add_trust t.directory ~wire:e.e_wire ~node:n) trust;
      e
  | None ->
      let wire = mint t in
      List.iter (fun n -> Directory.add_trust t.directory ~wire ~node:n) trust;
      record t ~wire ~cat ()

let trusted_for t ~wire ~node =
  node = origin t wire || Directory.trusted t.directory ~wire ~node

let exported t =
  Hashtbl.fold (fun w e acc -> (w, e.e_cat) :: acc) t.by_wire []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)
