(* distd: the per-node remote-gate daemon.

   Architecture (netd-style, §5.7 generalized across kernels): each
   node runs a listener thread that accepts backbone TCP connections
   through its local netd and spawns one conn thread per peer
   connection. A conn thread deframes and unseals Call messages,
   translates the caller's label and capacity into local categories
   ({!Proto.of_wire}, importing unknown wire names on first sight),
   runs the admission check ({!Proto.admit} — the model's gate rule
   over translated labels), and only then spawns a *proxy thread* at
   the translated label/clearance to run the service handler. The
   proxy stands in for the remote caller exactly the way a gate-enter
   thread stands in for a local one: same floor, same clearance cap.

   Ownership plumbing: a conn thread that imports a wire name creates
   the local twin with [cat_create] (gaining its ⋆) and immediately
   publishes a persistent *grant gate* whose entry does [gate_return
   ~keep:[c]] — the §6.2 check-gate idiom — so any later thread on
   the node can re-acquire ⋆c by gate-calling it. Conn threads use
   those gates to collect the ⋆s a proxy label needs, spawn the proxy
   (thread_create requires the spawner to own every ⋆ it passes
   down), then drop back to their clean label. The proxy's result
   comes back through a host-side cell the conn thread poll-parks on
   ([sleep_until_ns] in 50µs steps): a futex would need the untainted
   conn thread to observe tainted proxy state, which is exactly what
   the label algebra forbids — polling virtual time leaks nothing.

   Refusals: information flow is enforced at four points, all counted
   in [net.dist_refused] (and per-node [net.dist_refused.n<id>]):
   - egress: a caller whose label carries unexported categories
     cannot express itself on the wire (translate failure);
   - admission: {!Proto.admit} refuses the call like a local gate;
   - reply capacity: the server drops a reply whose label (sans ⋆)
     would not be ⊑ the caller's advertised capacity — the answer is
     never serialized, so refused data never crosses the wire;
   - acceptance: the caller re-checks the translated reply label
     against its own clearance before raising its label to read.

   Callers must be clean or own their taint: the calling thread talks
   TCP through netd itself, so its label must flow to the netd device
   label. That is this module's documented egress policy — a tainted
   caller that owns its taint (⋆) passes; anonymous taint must stay
   on-node (it could not come back past acceptance anyway). *)

module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Metrics = Histar_metrics.Metrics
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Netd = Histar_net.Netd
module Addr = Histar_net.Addr
module Seal = Histar_crypto.Seal

let m_calls = Metrics.counter "net.dist_calls"
let m_refused = Metrics.counter "net.dist_refused"
let m_served = Metrics.counter "net.dist_served"
let m_probes = Metrics.counter "net.dist_probes"
let m_batched = Metrics.counter "net.dist_admit_batched"
let m_conn_reused = Metrics.counter "net.dist_conn_reused"

(* --- tuning knobs ---

   All dist-plane tuning lives under HISTAR_DIST_*, mirroring the
   HISTAR_FAULTS / HISTAR_CHECK_* conventions: read at use time (so a
   test can set and unset them), integer-valued, with the defaults
   documented here and in EXPERIMENTS.md.

     HISTAR_DIST_GIVEUP          connect attempts before a call gives
                                 up with Transport (default 1 — fail
                                 fast, the balancer handles failover)
     HISTAR_DIST_COOLDOWN_MS     initial per-peer backoff after a
                                 transport failure (default 40)
     HISTAR_DIST_RETRY_CAP_MS    cap on the exponential backoff
                                 (default 640 — 5 doublings)
     HISTAR_DIST_SHARDS          user-db shard count for apps/bench
                                 (default 3)
     HISTAR_DIST_SESSION_TTL_MS  app-node session-token cache TTL
                                 (default 5000) *)
module Tuning = struct
  let env_int name default =
    match Stdlib.Sys.getenv_opt name with
    | Some s -> ( try int_of_string (String.trim s) with _ -> default)
    | None -> default

  let giveup () = env_int "HISTAR_DIST_GIVEUP" 1
  let cooldown_ms () = env_int "HISTAR_DIST_COOLDOWN_MS" 40
  let retry_cap_ms () = env_int "HISTAR_DIST_RETRY_CAP_MS" 640
  let shards () = env_int "HISTAR_DIST_SHARDS" 3
  let session_ttl_ms () = env_int "HISTAR_DIST_SESSION_TTL_MS" 5_000
end

(* --- peer health ---

   Per-peer failure tracking with capped exponential backoff.  PR 5's
   balancer used a fixed-period cooldown: a dead node was re-probed
   every cooldown forever, so a permanently dead shard cost one full
   RTO give-up per period for the rest of the run.  Here consecutive
   failures double the backoff up to HISTAR_DIST_RETRY_CAP_MS; the
   first send after a backoff window expires is a *probe*, counted in
   [net.dist_probes].  A probe that succeeds resets the peer to
   healthy; one that fails doubles the window again.  All state is
   driven by virtual time, so failover schedules replay exactly. *)
module Peer_health = struct
  type peer = { mutable fails : int; mutable down_until_ns : int64 }

  type t = {
    peers : (int, peer) Hashtbl.t;
    cooldown_ns : int64;
    cap_ns : int64;
  }

  let ns_of_ms ms = Int64.mul (Int64.of_int ms) 1_000_000L

  let create ?cooldown_ms ?cap_ms () =
    let cd =
      match cooldown_ms with Some m -> m | None -> Tuning.cooldown_ms ()
    in
    let cap =
      match cap_ms with Some m -> m | None -> Tuning.retry_cap_ms ()
    in
    {
      peers = Hashtbl.create 8;
      cooldown_ns = ns_of_ms (max 1 cd);
      cap_ns = ns_of_ms (max 1 cap);
    }

  let peer t node =
    match Hashtbl.find_opt t.peers node with
    | Some p -> p
    | None ->
        let p = { fails = 0; down_until_ns = 0L } in
        Hashtbl.replace t.peers node p;
        p

  (* May we send to [node] now?  [`Yes] — healthy.  [`Probe] — the
     backoff window elapsed; this send is the probe (counted).
     [`No] — still inside the backoff window. *)
  let usable t ~node ~now_ns =
    let p = peer t node in
    if p.fails = 0 then `Yes
    else if Int64.compare now_ns p.down_until_ns >= 0 then (
      Metrics.Counter.incr m_probes;
      `Probe)
    else `No

  let ok t ~node =
    let p = peer t node in
    p.fails <- 0;
    p.down_until_ns <- 0L

  let failed t ~node ~now_ns =
    let p = peer t node in
    p.fails <- p.fails + 1;
    (* cooldown * 2^(fails-1), capped; shift saturates via the cap *)
    let mult = Int64.shift_left 1L (min 20 (p.fails - 1)) in
    let backoff =
      let b = Int64.mul t.cooldown_ns mult in
      if Int64.compare b t.cap_ns > 0 || Int64.compare b 0L <= 0 then t.cap_ns
      else b
    in
    p.down_until_ns <- Int64.add now_ns backoff

  let fail_count t ~node = (peer t node).fails

  let is_down t ~node ~now_ns =
    match usable t ~node ~now_ns with `No -> true | `Yes | `Probe -> false
end

type service = {
  sv_label : Label.t;
  sv_clear : Label.t;
  sv_handler : string -> string * Category.t list;
}

type t = {
  node_id : int;
  k : Kernel.t;
  netd : Netd.t;
  names : Names.t;
  seal : Seal.t;
  container : Types.oid;
  port : Addr.port;
  peers : int -> Addr.t;
  services : (string, service) Hashtbl.t;
  mutable svc_version : int;
      (* bumped on every [register]; invalidates per-conn admission
         memos built against the old service table *)
  pool : (int, Netd.Client.sock) Hashtbl.t;
      (* idle pooled connections per peer node ([Hashtbl.add]
         multi-binding: concurrent callers each pop their own) *)
  mutable nonce_seq : int;
  m_node_refused : Metrics.Counter.t;
}

type call_error =
  | Refused of string  (** information-flow refusal, either side *)
  | Remote of string  (** remote execution error *)
  | Transport of string  (** connect/stream failure (node down, lossy link) *)

let l1 = Label.make Level.L1
let l2 = Label.make Level.L2
let l3 = Label.make Level.L3

let node_id t = t.node_id
let names t = t.names

let refuse t reason =
  Metrics.Counter.incr m_refused;
  Metrics.Counter.incr t.m_node_refused;
  Error (Refused reason)

let mint_nonce t =
  let seq = t.nonce_seq in
  t.nonce_seq <- seq + 1;
  Int64.logor (Int64.shift_left (Int64.of_int t.node_id) 40) (Int64.of_int seq)

(* --- grant gates --- *)

(* Publish a persistent gate granting ⋆[cat]; the calling thread must
   own [cat]. Entry label {cat⋆, 1}: invoking it taints nobody, and
   the ⋆ in the gate label puts cat⋆ inside the entry floor so the
   entry thread owns it and may [keep] it through the return. *)
let make_grant_gate t cat =
  let gid =
    Sys.gate_create ~container:t.container
      ~label:(Label.of_list [ (cat, Level.Star) ] Level.L1)
      ~clearance:l2 ~quota:4096L
      ~name:(Fmt.str "dist-grant-%s" (Category.to_string cat))
      (fun () -> Sys.gate_return ~keep:[ cat ] ())
  in
  Types.centry t.container gid

(* Import a wire name: return the local twin, creating it (and its
   grant gate) on first sight. Runs on conn threads and on callers
   translating replies; [cat_create] leaves the creating thread
   owning the twin, which is what lets it publish the grant gate. *)
let import t w =
  match Names.find_wire t.names w with
  | Some e -> e
  | None ->
      let cat = Sys.cat_create () in
      let e = Names.record t.names ~wire:w ~cat () in
      Names.set_grant e (make_grant_gate t cat);
      (* The importer mints the twin but must not keep the ⋆
         cat_create gave it: the wire name belongs to a remote owner,
         and keeping it would silently absorb incoming taint.
         Ownership on this node is only ever obtained by claiming
         through the grant gate. *)
      Sys.self_set_label (Label.set (Sys.self_label ()) cat Level.L1);
      e

(* Acquire ⋆ of every category [l] owns that the calling thread does
   not, via the grant gates. Growth only: the thread keeps its other
   privileges (gate_call requests our current label plus the ⋆). *)
let acquire_stars t l =
  Category.Set.iter
    (fun c ->
      if not (Label.owns (Sys.self_label ()) c) then
        match Names.find_local t.names c with
        | Some { Names.e_grant = Some gate; _ } ->
            Sys.gate_call ~gate
              ~label:(Label.set (Sys.self_label ()) c Level.Star)
              ~clearance:(Sys.self_clearance ())
              ~return_container:t.container
              ~return_label:(Sys.self_label ())
              ~return_clearance:(Sys.self_clearance ())
              ()
        | Some { Names.e_grant = None; _ } | None ->
            failwith
              (Fmt.str "dist: no grant route for category %s"
                 (Category.to_string c)))
    (Label.owned l)

(* Export a locally-owned category (grant gate + wire name + trust
   list). Must run on a thread that owns [cat]. *)
let export_owned t ?(trust = []) cat =
  let e = Names.export t.names ~trust cat in
  (match e.Names.e_grant with
  | Some _ -> ()
  | None -> Names.set_grant e (make_grant_gate t cat));
  e.Names.e_wire

(* Re-bind a persisted category to its original wire name after a
   node recovers from its store: record the binding and install a
   fresh grant gate (persisted gate entries die with serialization).
   Unlike [export_owned] no wire name is minted — the wire identity
   survives the crash, so importers on other nodes keep their twins
   and the directory's trust entries stay valid. Must run on a thread
   owning [cat]. *)
let rebind_owned t ~wire cat =
  let e =
    match Names.find_wire t.names wire with
    | Some e -> e
    | None -> Names.record t.names ~wire ~cat ()
  in
  match e.Names.e_grant with
  | Some _ -> ()
  | None -> Names.set_grant e (make_grant_gate t cat)

(* Claim grants carried by a reply: import each wire name and acquire
   its ⋆ (first importer owns the twin outright). *)
let claim_grants t wires =
  List.map
    (fun w ->
      let e = import t w in
      let c = e.Names.e_cat in
      if not (Label.owns (Sys.self_label ()) c) then
        acquire_stars t (Label.of_list [ (c, Level.Star) ] Level.L1);
      c)
    wires

(* --- server side --- *)

let register t ~service ~label ~clearance handler =
  t.svc_version <- t.svc_version + 1;
  Hashtbl.replace t.services service
    { sv_label = label; sv_clear = clearance; sv_handler = handler }

let unregister t ~service =
  t.svc_version <- t.svc_version + 1;
  Hashtbl.remove t.services service

(* Poll-park until the proxy posts its result. A futex would require
   the clean conn thread to observe tainted proxy writes; virtual
   time is label-free. *)
let rec await_cell cell =
  match !cell with
  | Some r -> r
  | None ->
      Sys.sleep_until_ns (Int64.add (Sys.clock_ns ()) 50_000L);
      await_cell cell

(* Admission phase: translate the caller's wire label and capacity
   into local categories and run the §3.5 check.  Pure given the
   names/trust state, so it is memoizable per connection (below) —
   trust only ever grows, and growth only *adds* ⋆ to the translated
   label, so a cached admit is never more permissive than a fresh
   one.  Refusals are never cached: a caller refused during a handoff
   window must be admitted on the next request after commit. *)
let admit_call t call (sv : service) =
  let from = call.Wire.c_from in
  let resolve w = (import t w).Names.e_cat in
  let lt =
    Proto.of_wire ~resolve
      ~trusted:(fun w -> Names.trusted_for t.names ~wire:w ~node:from)
      call.Wire.c_label
  in
  (* Capacity entries assert no privilege; clamp any ⋆/J outright. *)
  let ct = Proto.of_wire ~resolve ~trusted:(fun _ -> false) call.Wire.c_clear in
  (* The proxy runs at the caller's translated label raised by the
     service's ⋆s — the gate floor — with the caller's capacity. *)
  let rl =
    Category.Set.fold
      (fun c acc -> Label.set acc c Level.Star)
      (Label.owned sv.sv_label) lt
  in
  let rc = ct in
  match
    Proto.admit ~lt ~ct ~lg:sv.sv_label ~gclear:sv.sv_clear ~rl ~rc ~lv:l3
  with
  | Error reason -> Error reason
  | Ok () -> Ok (lt, ct, rl, rc)

(* Execution phase: spawn the proxy at the admitted floor and police
   the reply. *)
let run_admitted t call (sv : service) ~ct ~rl ~rc =
  (
      let clean = Sys.self_label () in
      acquire_stars t rl;
      let cell = ref None in
      let _proxy =
        Sys.thread_create ~container:t.container ~label:rl ~clearance:rc
          ~quota:262144L
          ~name:(Fmt.str "dist-proxy-%s" call.Wire.c_service)
          (fun () ->
            let res =
              match sv.sv_handler call.Wire.c_args with
              | payload, grants ->
                  let self = Sys.self_label () in
                  if List.for_all (Label.owns self) grants then
                    `Done (self, payload, grants)
                  else `Err "dist: service granted an unowned category"
              | exception Types.Kernel_error e -> `Err (Types.error_to_string e)
              | exception Failure m -> `Err m
            in
            cell := Some res)
      in
      Sys.self_set_label clean;
      match await_cell cell with
      | `Err m ->
          { Wire.r_status = S_error; r_label = { wl_entries = []; wl_default = 1 };
            r_grants = []; r_payload = m }
      | `Done (rlabel, payload, grants) -> (
          (* Server-side refusal: the reply label, stripped of the
             proxy's privileges, must fit the caller's capacity —
             otherwise the answer is dropped before serialization.
             Plain taint is already capped by rc (kernel clearance
             rule), so what this actually guards is ⋆-derived
             exposure: a service owning categories the caller could
             never read (pessimistically, nobody may honor our ⋆ on
             the far side). *)
          if not (Label.leq (Proto.star_to_l3 rlabel) ct) then (
            ignore (refuse t "dist: reply label exceeds caller capacity"
                    : (_, call_error) result);
            { Wire.r_status = S_refused;
              r_label = { wl_entries = []; wl_default = 1 };
              r_grants = []; r_payload = "reply label exceeds caller capacity" })
          else
            match Proto.to_wire t.names rlabel with
            | Error m ->
                ignore (refuse t ("dist: reply carries unexported taint: " ^ m)
                        : (_, call_error) result);
                { Wire.r_status = S_refused;
                  r_label = { wl_entries = []; wl_default = 1 };
                  r_grants = []; r_payload = "reply carries unexported taint" }
            | Ok wl ->
                let r_grants =
                  List.map
                    (fun c ->
                      match Names.find_local t.names c with
                      | Some e -> e.Names.e_wire
                      | None ->
                          (* Handler-owned but never exported: mint now
                             so the grant is claimable cluster-wide.
                             The conn thread does not own c, but the
                             wire name itself is public metadata. *)
                          (Names.export t.names c).Names.e_wire)
                    grants
                in
                Metrics.Counter.incr m_served;
                { Wire.r_status = S_ok; r_label = wl; r_grants;
                  r_payload = payload }))

(* Per-connection admission memo.  On a long-lived peer connection
   the same (caller, label, capacity, service) tuple recurs on every
   request, so the admission outcome — wire translation plus the full
   §3.5 check — runs once per connection instead of once per request;
   replays are counted in [net.dist_admit_batched].  Entries carry
   the service-table version: re-registering a service (recovery,
   rebalance import) invalidates every memo built against the old
   table.  Only admits are memoized — a refusal (e.g. during a
   handoff window) must be recomputed so the caller is admitted again
   the moment the handoff commits. *)
type memo_key = string * int * Wire.wlabel * Wire.wlabel

let memo_key (call : Wire.call) : memo_key =
  (call.Wire.c_service, call.Wire.c_from, call.Wire.c_label, call.Wire.c_clear)

let handle_call ?memo t call =
  match Hashtbl.find_opt t.services call.Wire.c_service with
  | None ->
      { Wire.r_status = S_error; r_label = { wl_entries = []; wl_default = 1 };
        r_grants = []; r_payload = "no such service: " ^ call.Wire.c_service }
  | Some sv -> (
      let cached =
        match memo with
        | None -> None
        | Some tbl -> (
            match Hashtbl.find_opt tbl (memo_key call) with
            | Some (ver, ct, rl, rc) when ver = t.svc_version ->
                Some (ct, rl, rc)
            | Some _ | None -> None)
      in
      match cached with
      | Some (ct, rl, rc) ->
          Metrics.Counter.incr m_batched;
          run_admitted t call sv ~ct ~rl ~rc
      | None -> (
          match admit_call t call sv with
          | Error reason ->
              ignore (refuse t reason : (_, call_error) result);
              { Wire.r_status = S_refused;
                r_label = { wl_entries = []; wl_default = 1 };
                r_grants = []; r_payload = reason }
          | Ok (_lt, ct, rl, rc) ->
              (match memo with
              | Some tbl ->
                  Hashtbl.replace tbl (memo_key call)
                    (t.svc_version, ct, rl, rc)
              | None -> ());
              run_admitted t call sv ~ct ~rl ~rc))

let conn_loop t sock () =
  let rc = t.container in
  let buf = ref "" in
  let memo : (memo_key, int * Label.t * Label.t * Label.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let closed = ref false in
  try
    while not !closed do
      (match Wire.deframe !buf with
      | Some (nonce, body, rest) ->
          buf := rest;
          let reply =
            match Wire.unseal_msg t.seal ~nonce body with
            | Some (Wire.Call call) -> (
                try handle_call ~memo t call
                with e ->
                  { Wire.r_status = S_error;
                    r_label = { wl_entries = []; wl_default = 1 };
                    r_grants = []; r_payload = Printexc.to_string e })
            | Some (Wire.Reply _) ->
                { Wire.r_status = S_error;
                  r_label = { wl_entries = []; wl_default = 1 };
                  r_grants = []; r_payload = "unexpected reply" }
            | None ->
                ignore (refuse t "dist: unsealable frame"
                        : (_, call_error) result);
                { Wire.r_status = S_error;
                  r_label = { wl_entries = []; wl_default = 1 };
                  r_grants = []; r_payload = "unsealable frame" }
          in
          (* Reply under the complemented nonce: request and reply
             must not share a keystream. *)
          Netd.Client.send t.netd ~return_container:rc sock
            (Wire.seal_msg t.seal ~nonce:(Int64.lognot nonce)
               (Wire.Reply reply))
      | None -> (
          match Netd.Client.recv t.netd ~return_container:rc sock with
          | Some data -> buf := !buf ^ data
          | None -> closed := true))
    done;
    Netd.Client.close t.netd ~return_container:rc sock
  with Netd.Client.Netd_error _ -> ()

let listener t () =
  let rc = t.container in
  Netd.Client.listen t.netd ~return_container:rc t.port;
  let n = ref 0 in
  while true do
    let sock = Netd.Client.accept t.netd ~return_container:rc t.port in
    incr n;
    ignore
      (Sys.thread_create ~container:t.container ~label:l1 ~clearance:l3
         ~quota:262144L
         ~name:(Fmt.str "dist-conn-%d" !n)
         (conn_loop t sock))
  done

let start k ~netd ~names ~key ~container ~port ~peers () =
  let node = Names.node_id names in
  let t =
    {
      node_id = node;
      k;
      netd;
      names;
      seal = Seal.create ~key;
      container;
      port;
      peers;
      services = Hashtbl.create 8;
      svc_version = 0;
      pool = Hashtbl.create 8;
      nonce_seq = 0;
      m_node_refused = Metrics.counter (Fmt.str "net.dist_refused.n%d" node);
    }
  in
  ignore
    (Kernel.spawn k ~label:l1 ~clearance:l3 ~container
       ~name:(Fmt.str "distd%d" node)
       (listener t));
  t

(* --- client side --- *)

let recv_frame t rc sock buf =
  let rec go () =
    match Wire.deframe !buf with
    | Some (nonce, body, rest) ->
        buf := rest;
        Some (nonce, body)
    | None -> (
        match Netd.Client.recv t.netd ~return_container:rc sock with
        | Some data ->
            buf := !buf ^ data;
            go ()
        | None -> None)
  in
  go ()

(* Connection pooling: idle peer connections are parked in [t.pool]
   and reused by later calls ([Hashtbl.add] multi-binding — two
   concurrent callers to the same node each pop a distinct socket, so
   frames never interleave on one stream).  A pooled socket can be
   stale (the peer crashed and restarted since it was parked): a
   transport failure on a *pooled* socket is retried once on a fresh
   connection before the error is surfaced.  The PR-5 close-before-
   taint discipline becomes park-before-taint: returning a socket to
   the pool is host-side bookkeeping, no netd traffic, so it is safe
   after the final netd interaction and before the label raise. *)
let pool_take t ~node =
  match Hashtbl.find_opt t.pool node with
  | Some sock ->
      Hashtbl.remove t.pool node;
      Metrics.Counter.incr m_conn_reused;
      Some sock
  | None -> None

let pool_put t ~node sock = Hashtbl.add t.pool node sock

let pool_drop_all t ~node =
  let rec go () =
    match Hashtbl.find_opt t.pool node with
    | Some sock ->
        Hashtbl.remove t.pool node;
        (try Netd.Client.close t.netd ~return_container:t.container sock
         with Netd.Client.Netd_error _ -> ());
        go ()
    | None -> ()
  in
  go ()

let call t ~node ~service args =
  Metrics.Counter.incr m_calls;
  let rc = t.container in
  let lt = Sys.self_label () in
  let capacity = Proto.cap ~label:lt ~clearance:(Sys.self_clearance ()) in
  match Proto.to_wire t.names lt with
  | Error m -> refuse t ("dist: egress: " ^ m)
  | Ok wl -> (
      let attempt sock =
        (* One request/reply exchange over [sock].  [`Transport] means
           the stream died (retryable on a fresh conn when the socket
           was pooled); any other outcome is final. *)
        let drop r =
          (try Netd.Client.close t.netd ~return_container:rc sock
           with Netd.Client.Netd_error _ -> ());
          r
        in
        let park r =
          pool_put t ~node sock;
          r
        in
        match Proto.to_wire t.names capacity with
        | Error m ->
            (* Socket unused — park it for the next caller. *)
            `Final (park (refuse t ("dist: egress capacity: " ^ m)))
        | Ok wc -> (
            try
              let nonce = mint_nonce t in
              Netd.Client.send t.netd ~return_container:rc sock
                (Wire.seal_msg t.seal ~nonce
                   (Wire.Call
                      {
                        c_service = service;
                        c_from = t.node_id;
                        c_label = wl;
                        c_clear = wc;
                        c_args = args;
                      }));
              let buf = ref "" in
              match recv_frame t rc sock buf with
              | None -> `Transport "connection closed"
              | Some (rnonce, body) -> (
                  match Wire.unseal_msg t.seal ~nonce:rnonce body with
                  | None | Some (Wire.Call _) ->
                      `Final (drop (refuse t "dist: unsealable reply"))
                  | Some (Wire.Reply r) -> (
                      match r.Wire.r_status with
                      | Wire.S_refused -> `Final (park (refuse t r.Wire.r_payload))
                      | Wire.S_error ->
                          `Final (park (Error (Remote r.Wire.r_payload)))
                      | Wire.S_ok ->
                          let resolve w = (import t w).Names.e_cat in
                          let rlabel =
                            Proto.of_wire ~resolve
                              ~trusted:(fun w ->
                                Names.trusted_for t.names ~wire:w ~node)
                              r.Wire.r_label
                          in
                          (* Acceptance: raising our label to read the
                             reply must stay within our clearance. *)
                          let needed =
                            Label.taint_to_read ~thread:(Sys.self_label ())
                              ~obj:rlabel
                          in
                          if not (Label.leq needed (Sys.self_clearance ()))
                          then
                            `Final
                              (park
                                 (refuse t "dist: reply exceeds caller clearance"))
                          else (
                            (* Park while still clean: once tainted, this
                               thread may no longer speak to netd (egress
                               policy), so the label raise must be the
                               last thing done. *)
                            let r =
                              park (Ok (r.Wire.r_payload, r.Wire.r_grants))
                            in
                            Sys.self_set_label needed;
                            `Final r)))
            with Netd.Client.Netd_error m -> `Transport m)
      in
      let fresh () =
        match
          Netd.Client.connect_retry ~attempts:(max 1 (Tuning.giveup ())) t.netd
            ~return_container:rc (t.peers node)
        with
        | exception Netd.Client.Netd_error m -> Error (Transport m)
        | sock -> (
            match attempt sock with
            | `Final r -> r
            | `Transport m ->
                (try Netd.Client.close t.netd ~return_container:rc sock
                 with Netd.Client.Netd_error _ -> ());
                Error (Transport m))
      in
      match pool_take t ~node with
      | None -> fresh ()
      | Some sock -> (
          match attempt sock with
          | `Final r -> r
          | `Transport _ ->
              (* Stale pooled conn (peer restarted since it was
                 parked): drop every pooled conn to this peer and
                 retry once on a fresh connection. *)
              (try Netd.Client.close t.netd ~return_container:rc sock
               with Netd.Client.Netd_error _ -> ());
              pool_drop_all t ~node;
              fresh ()))
