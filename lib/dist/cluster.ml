(* Deterministic multi-kernel driver.

   Each node is an independent Kernel.t with its own virtual clock;
   client machines outside any kernel are bare {!Stack}s with a
   shared edge clock. The driver round-robins runnable kernels in
   registration order with a bounded slice each, and only when *every*
   kernel is idle fires exactly one timer: the one with the smallest
   *relative* wait (deadline minus its own host's now). Comparing
   relative waits is what keeps independently-drifting clocks fair —
   an absolute-deadline comparison would starve whichever node's
   clock happens to run ahead. Ties break by registration order, so a
   run is a pure function of the seeds.

   [Kernel.step] on an idle kernel fires that kernel's own earliest
   deadline; host stacks get their clock advanced to the deadline and
   a [Stack.tick]. The [until] predicate is evaluated every round and
   doubles as the caller's pump (client state machines poll inside
   it), mirroring how bench/runner drives wget against a kernel. *)

module Kernel = Histar_core.Kernel
module Sim_clock = Histar_util.Sim_clock
module Stack = Histar_net.Stack
module Hub = Histar_net.Hub
module Par = Histar_par.Par

type host = { h_stack : Stack.t; h_clock : Sim_clock.t }

type t = {
  mutable kernels : Kernel.t list;  (* reversed registration order *)
  mutable hosts : host list;
  mutable on_tick : (int64 -> unit) option;
      (* driver hook, called with global virtual now once per drive
         round — the crash-plan pump (kill/restart at virtual times) *)
}

let create () = { kernels = []; hosts = []; on_tick = None }
let add_kernel t k = t.kernels <- t.kernels @ [ k ]

(* Remove a node from scheduling (node crash): its threads stop
   running and its timers stop being considered, exactly as if the
   machine lost power — volatile state is simply never consulted
   again.  Removal is by physical identity; re-adding a recovered
   kernel appends it at the end of registration order, which is part
   of the deterministic schedule and must match across double runs. *)
let remove_kernel t k = t.kernels <- List.filter (fun k' -> k' != k) t.kernels
let set_on_tick t f = t.on_tick <- f

let add_host t ~stack ~clock =
  t.hosts <- t.hosts @ [ { h_stack = stack; h_clock = clock } ]

let kernels t = t.kernels

(* All distinct clocks in the cluster, deduplicated physically:
   kernel-less client hosts typically share one edge clock. *)
let clocks t =
  let cs =
    List.map (fun k -> Kernel.clock k) t.kernels
    @ List.map (fun h -> h.h_clock) t.hosts
  in
  List.fold_left (fun acc c -> if List.memq c acc then acc else c :: acc) [] cs

(* One scheduling decision when everyone is idle: the pending timer
   with the least relative wait fires, and — crucially — *every*
   clock in the cluster is synchronized to the global maximum plus
   that wait. Virtual time is global: without the joint advance, a
   node with a periodic housekeeping timer (netd re-arms every 50ms)
   would keep presenting a smaller relative wait than a peer's
   pending 200ms RTO forever, and the RTO would never fire — a
   cross-node timeout livelock. Synchronizing to the maximum (rather
   than adding an equal delta everywhere) also absorbs the drift that
   per-syscall costs introduce: a busy node's clock runs ahead of an
   idle one's between timer rounds, and an idle node that keeps
   timing out against its own lagging clock would otherwise see
   cross-node deadlines recede indefinitely. Timers left overdue by
   the jump fire on later rounds with wait 0. *)
(* Global virtual now: the maximum over every clock in the cluster.
   This is the time axis crash schedules are written against. *)
let global_now_ns t =
  List.fold_left
    (fun m c ->
      let n = Sim_clock.now_ns c in
      if Int64.compare n m > 0 then n else m)
    0L (clocks t)

(* Jointly advance every clock to the global maximum — the same
   synchronization a timer firing performs, available to hosts that
   want a clean time baseline after un-driven work (e.g. measuring
   from after provisioning rather than across it). *)
let sync_clocks t =
  let tgt = global_now_ns t in
  List.iter
    (fun c ->
      let d = Int64.sub tgt (Sim_clock.now_ns c) in
      if Int64.compare d 0L > 0 then Sim_clock.advance_ns c d)
    (clocks t)

let fire_next_timer t =
  let best = ref None in
  let consider wait target =
    match !best with
    | Some (w, _) when Int64.compare w wait <= 0 -> ()
    | Some _ | None -> best := Some (wait, target)
  in
  List.iter
    (fun k ->
      match Kernel.next_timer_ns k with
      | Some d ->
          let w = Int64.sub d (Sim_clock.now_ns (Kernel.clock k)) in
          consider (if Int64.compare w 0L < 0 then 0L else w) (`Kernel k)
      | None -> ())
    t.kernels;
  List.iter
    (fun h ->
      match Stack.next_timer_deadline h.h_stack with
      | Some d ->
          let w = Int64.sub d (Sim_clock.now_ns h.h_clock) in
          consider (if Int64.compare w 0L < 0 then 0L else w) (`Host h)
      | None -> ())
    t.hosts;
  match !best with
  | None -> false
  | Some (w, target) ->
      let cs = clocks t in
      let global_now = global_now_ns t in
      let tgt = Int64.add global_now w in
      List.iter
        (fun c ->
          let d = Int64.sub tgt (Sim_clock.now_ns c) in
          if Int64.compare d 0L > 0 then Sim_clock.advance_ns c d)
        cs;
      (match target with
      | `Kernel k -> ignore (Kernel.step k : bool)
      | `Host h -> Stack.tick h.h_stack);
      true

(* Run every kernel to quiescence without firing any timer: boot
   threads (netd init, service registration, listeners parking in
   accept) complete before any cross-node traffic is attempted, so
   no SYN can race a listener that has not yet registered its port. *)
let settle ?(max_rounds = 64) t =
  let rec go n =
    if n > 0 && List.exists (fun k -> Kernel.runnable_count k > 0) t.kernels
    then begin
      List.iter
        (fun k ->
          while Kernel.runnable_count k > 0 do
            ignore (Kernel.step k : bool)
          done)
        t.kernels;
      go (n - 1)
    end
  in
  go max_rounds

(* One bulk-synchronous step: every kernel runs up to [slice] steps
   with its transmissions parked in a per-kernel outbox, then the
   outboxes flush onto the wire in registration order (FIFO within a
   sender). Between barriers a kernel touches only its own state —
   its clock, scheduler, stacks and outbox — so the kernels step
   concurrently on the lib/par pool; the barrier is the only
   cross-domain synchronization point, and the flush schedule is a
   pure function of registration order, so the round is byte-identical
   whatever HISTAR_DOMAINS says (including 1, where the same deferred
   schedule simply runs inline). *)
let step_round ~slice t =
  let ks = Array.of_list t.kernels in
  let obs = Array.map (fun _ -> Hub.new_outbox ()) ks in
  ignore
    (Par.run (Array.length ks) (fun i ->
         Hub.with_outbox obs.(i) (fun () ->
             let k = ks.(i) in
             let budget = ref slice in
             while Kernel.runnable_count k > 0 && !budget > 0 do
               ignore (Kernel.step k : bool);
               decr budget
             done))
      : unit array);
  Array.iter Hub.flush_outbox obs

let drive ?(slice = 20_000) ?(max_rounds = 200_000) t ~until () =
  let rec round n =
    (match t.on_tick with Some f -> f (global_now_ns t) | None -> ());
    if until () then true
    else if n <= 0 then false
    else begin
      step_round ~slice t;
      if List.exists (fun k -> Kernel.runnable_count k > 0) t.kernels then
        round (n - 1)
      else if until () then true
      else if fire_next_timer t then round (n - 1)
      else until ()
    end
  in
  round max_rounds
