(** distd: per-node remote-gate daemon — netd-style service gates
    stretched across kernels, with labels carried on the wire.

    Each node runs a listener on its backbone netd; per-connection
    conn threads translate incoming labels ({!Proto.of_wire}), run
    the model's gate-invocation rule over them ({!Proto.admit}), and
    spawn a proxy thread at the translated label/clearance to run the
    registered service handler — the remote analogue of a gate-enter
    thread. Category ownership moves between threads of one node via
    persistent grant gates (the §6.2 check-gate idiom) and between
    nodes via reply grants claimed with {!claim_grants}.

    Refusal points, all counted in [net.dist_calls] /
    [net.dist_refused] (and per-node [net.dist_refused.n<id>]):
    caller egress (unexported taint cannot be expressed on the wire),
    admission ({!Proto.admit}), server reply-capacity (an answer the
    caller's advertised capacity cannot cover is dropped *before*
    serialization), and caller acceptance (reading the reply must not
    exceed the caller's clearance).

    Egress policy: the calling thread speaks TCP through netd itself,
    so its label must flow to the netd device — callers are clean or
    own their taint; anonymous taint stays on-node. *)

module Label = Histar_label.Label
module Category = Histar_label.Category

type t

type call_error =
  | Refused of string  (** information-flow refusal, either side *)
  | Remote of string  (** remote execution error *)
  | Transport of string  (** connect/stream failure (node down, lossy link) *)

val start :
  Histar_core.Kernel.t ->
  netd:Histar_net.Netd.t ->
  names:Names.t ->
  key:int64 ->
  container:Histar_core.Types.oid ->
  port:Histar_net.Addr.port ->
  peers:(int -> Histar_net.Addr.t) ->
  unit ->
  t
(** Spawn the node's listener. [key] is the shared cluster sealing
    key; [peers] maps node ids to backbone addresses. Must be called
    before the kernel runs. *)

val node_id : t -> int
val names : t -> Names.t

val register :
  t ->
  service:string ->
  label:Label.t ->
  clearance:Label.t ->
  (string -> string * Category.t list) ->
  unit
(** Register a service: the remote analogue of creating a service
    gate with label [label] (its ⋆s are granted to the proxy) and
    clearance [clearance] (callers above it are refused). The handler
    runs on the proxy thread and returns the reply payload plus
    categories to grant through the return (it must own them). *)

val export_owned : t -> ?trust:int list -> Category.t -> int64
(** Publish a locally-owned category cluster-wide: mint its wire
    name, register [trust]ed speaker nodes, and install the local
    grant gate. Must run on a thread owning the category. *)

val claim_grants : t -> int64 list -> Category.t list
(** Claim grants carried by a reply: import each wire name and
    acquire ⋆ of its local twin (via grant gates). *)

val call :
  t ->
  node:int ->
  service:string ->
  string ->
  (string * int64 list, call_error) result
(** Invoke [service] on [node] at the calling thread's label and
    clearance. On [Ok], the caller's label has been raised as needed
    to read the reply (within its clearance) and the payload plus any
    granted wire names are returned. Runs on the calling thread (it
    performs the netd socket calls itself). *)
