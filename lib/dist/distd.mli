(** distd: per-node remote-gate daemon — netd-style service gates
    stretched across kernels, with labels carried on the wire.

    Each node runs a listener on its backbone netd; per-connection
    conn threads translate incoming labels ({!Proto.of_wire}), run
    the model's gate-invocation rule over them ({!Proto.admit}), and
    spawn a proxy thread at the translated label/clearance to run the
    registered service handler — the remote analogue of a gate-enter
    thread. Category ownership moves between threads of one node via
    persistent grant gates (the §6.2 check-gate idiom) and between
    nodes via reply grants claimed with {!claim_grants}.

    Refusal points, all counted in [net.dist_calls] /
    [net.dist_refused] (and per-node [net.dist_refused.n<id>]):
    caller egress (unexported taint cannot be expressed on the wire),
    admission ({!Proto.admit}), server reply-capacity (an answer the
    caller's advertised capacity cannot cover is dropped *before*
    serialization), and caller acceptance (reading the reply must not
    exceed the caller's clearance).

    Egress policy: the calling thread speaks TCP through netd itself,
    so its label must flow to the netd device — callers are clean or
    own their taint; anonymous taint stays on-node. *)

module Label = Histar_label.Label
module Category = Histar_label.Category

type t

type call_error =
  | Refused of string  (** information-flow refusal, either side *)
  | Remote of string  (** remote execution error *)
  | Transport of string  (** connect/stream failure (node down, lossy link) *)

(** Dist-plane tuning knobs, consolidated under [HISTAR_DIST_*] env
    vars (read at use time, integer-valued), mirroring the
    [HISTAR_FAULTS] / [HISTAR_CHECK_*] conventions:

    - [HISTAR_DIST_GIVEUP] — connect attempts before a call fails with
      [Transport] (default 1: fail fast, failover handles the rest)
    - [HISTAR_DIST_COOLDOWN_MS] — initial per-peer backoff after a
      transport failure (default 40)
    - [HISTAR_DIST_RETRY_CAP_MS] — cap on the exponential backoff
      (default 640)
    - [HISTAR_DIST_SHARDS] — user-db shard count for apps and bench
      (default 3)
    - [HISTAR_DIST_SESSION_TTL_MS] — app-node session-token cache TTL
      (default 5000) *)
module Tuning : sig
  val giveup : unit -> int
  val cooldown_ms : unit -> int
  val retry_cap_ms : unit -> int
  val shards : unit -> int
  val session_ttl_ms : unit -> int
end

(** Per-peer failure tracking with capped exponential backoff, driven
    entirely by virtual time (replayable).  Consecutive transport
    failures double the backoff window from [cooldown_ms] up to
    [cap_ms]; the first send after a window expires is a probe,
    counted in [net.dist_probes].  A permanently dead peer is probed
    ever more rarely instead of once per fixed cooldown forever. *)
module Peer_health : sig
  type t

  val create : ?cooldown_ms:int -> ?cap_ms:int -> unit -> t
  (** Defaults come from {!Tuning}. *)

  val usable : t -> node:int -> now_ns:int64 -> [ `Yes | `Probe | `No ]
  (** [`Yes]: healthy. [`Probe]: backoff elapsed, this send is the
      probe (counted in [net.dist_probes]). [`No]: still backing off —
      do not send. *)

  val ok : t -> node:int -> unit
  (** Record a success: the peer is healthy again. *)

  val failed : t -> node:int -> now_ns:int64 -> unit
  (** Record a transport failure: doubles the backoff window. *)

  val fail_count : t -> node:int -> int
  val is_down : t -> node:int -> now_ns:int64 -> bool
end

val start :
  Histar_core.Kernel.t ->
  netd:Histar_net.Netd.t ->
  names:Names.t ->
  key:int64 ->
  container:Histar_core.Types.oid ->
  port:Histar_net.Addr.port ->
  peers:(int -> Histar_net.Addr.t) ->
  unit ->
  t
(** Spawn the node's listener. [key] is the shared cluster sealing
    key; [peers] maps node ids to backbone addresses. Must be called
    before the kernel runs. *)

val node_id : t -> int
val names : t -> Names.t

val register :
  t ->
  service:string ->
  label:Label.t ->
  clearance:Label.t ->
  (string -> string * Category.t list) ->
  unit
(** Register a service: the remote analogue of creating a service
    gate with label [label] (its ⋆s are granted to the proxy) and
    clearance [clearance] (callers above it are refused). The handler
    runs on the proxy thread and returns the reply payload plus
    categories to grant through the return (it must own them).

    Re-registering (any [register] or {!unregister} call) bumps the
    node's service-table version, invalidating the per-connection
    admission memos: a long-lived peer connection re-runs the full
    translate+admit for each (caller, label, capacity, service) tuple
    after the table changes, and otherwise replays the cached admit —
    counted in [net.dist_admit_batched].  Refusals are never cached. *)

val unregister : t -> service:string -> unit
(** Remove a service (e.g. while its shard's data is mid-handoff);
    callers get a remote error until it is re-registered. *)

val export_owned : t -> ?trust:int list -> Category.t -> int64
(** Publish a locally-owned category cluster-wide: mint its wire
    name, register [trust]ed speaker nodes, and install the local
    grant gate. Must run on a thread owning the category. *)

val rebind_owned : t -> wire:int64 -> Category.t -> unit
(** Re-bind a persisted category to its pre-crash wire name on a
    recovered node and install a fresh grant gate. No wire name is
    minted — identity survives the crash, so remote twins and
    directory trust stay valid. Must run on a thread owning the
    category. *)

val claim_grants : t -> int64 list -> Category.t list
(** Claim grants carried by a reply: import each wire name and
    acquire ⋆ of its local twin (via grant gates). *)

val call :
  t ->
  node:int ->
  service:string ->
  string ->
  (string * int64 list, call_error) result
(** Invoke [service] on [node] at the calling thread's label and
    clearance. On [Ok], the caller's label has been raised as needed
    to read the reply (within its clearance) and the payload plus any
    granted wire names are returned. Runs on the calling thread (it
    performs the netd socket calls itself).

    Connections are pooled per peer: a completed exchange parks its
    socket for reuse by the next (possibly different) calling thread
    — reuses counted in [net.dist_conn_reused] — and a transport
    failure on a pooled socket is retried once on a fresh connection
    (the peer may have restarted since the socket was parked). *)

val pool_drop_all : t -> node:int -> unit
(** Close every pooled connection to [node] — call when the peer is
    known dead so later calls don't burn an RTO on a stale socket. *)
