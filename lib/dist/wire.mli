(** Wire format for label-preserving remote gate calls.

    Every message carries labels explicitly: a {!wlabel} is the
    [Label.ranked] numeric view with cluster-scoped wire names (minted
    by {!Names}) in place of local category values. Transport frames
    are [u32 length | i64 nonce | sealed body] — the nonce keys the
    {!Histar_crypto.Seal} keystream and rides in the clear; everything
    label- or payload-bearing is sealed and tagged, so a wire
    eavesdropper on the shared hub learns only message sizes and a
    tamperer is detected at unseal. *)

type wlabel = { wl_entries : (int64 * int) list; wl_default : int }
(** A label in transit: (wire name, {!Histar_label.Level.to_rank})
    pairs plus the default rank. *)

type call = {
  c_service : string;
  c_from : int;  (** sender node id, authenticated by the shared key *)
  c_label : wlabel;  (** caller's thread label, wire names *)
  c_clear : wlabel;  (** caller's observation capacity, wire names *)
  c_args : string;
}

type status =
  | S_ok
  | S_refused  (** information-flow refusal; payload is the reason *)
  | S_error  (** remote execution error; payload is the message *)

type reply = {
  r_status : status;
  r_label : wlabel;  (** label of the replying thread, wire names *)
  r_grants : int64 list;  (** wire names granted through the return *)
  r_payload : string;
}

type msg = Call of call | Reply of reply

val encode_msg : msg -> string
val decode_msg : string -> msg

val frame_raw : nonce:int64 -> string -> string
(** [u32 length | i64 nonce | body]; [body] is already sealed. *)

val deframe : string -> (int64 * string * string) option
(** Peel one complete frame off a reassembly buffer: [Some (nonce,
    body, rest)], or [None] if the buffer does not yet hold a whole
    frame. Raises [Invalid_argument] on a runt length field. *)

val seal_msg : Histar_crypto.Seal.t -> nonce:int64 -> msg -> string
(** Encode, seal-and-tag, and frame one message. *)

val unseal_msg : Histar_crypto.Seal.t -> nonce:int64 -> string -> msg option
(** Unseal and decode a frame body; [None] on tag or codec failure
    (tampered, truncated, or wrong-key traffic). *)
