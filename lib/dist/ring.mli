(* Consistent-hash placement ring with draining handoff arcs.

   Pure, coordination-free placement: every node computes the same
   key -> owner mapping from the same (member set, vnode count).
   During a rebalance the arc being migrated is marked *draining*:
   [route] returns [`Handoff] and the caller must refuse admission
   — never mis-route — until [commit_handoff].  *)

type t

val create : ?vnodes:int -> int list -> t
(** [create members] builds a ring of [vnodes] points per member
    (default 16). *)

val members : t -> int list
val add_member : t -> int -> unit
val remove_member : t -> int -> unit

val owner : t -> string -> int option
(** Owning member of a key, ignoring handoff state. [None] iff the
    ring is empty. *)

val route : t -> string -> [ `Node of int | `Handoff of int * int | `No_members ]
(** Placement honoring handoff state: [`Handoff (old_owner, new_owner)]
    means the owning arc is draining and admission must be refused. *)

val begin_handoff : t -> key:string -> target:int -> (unit, string) result
(** Mark the arc covering [key] as draining toward [target]. *)

val commit_handoff : t -> key:string -> (int, string) result
(** Flip the draining arc's ownership to the handoff target and clear
    the mark; returns the new owner. *)

val abort_handoff : t -> key:string -> (unit, string) result
val draining_count : t -> int

val keys_owned : t -> node:int -> string list -> string list
(** Subset of [keys] whose owning arc belongs to [node]. *)
