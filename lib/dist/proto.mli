(** Label translation between local categories and wire names, plus
    the remote-gate admission check (the remote twin of the kernel's
    §3.5 gate-invocation rule). *)

module Label = Histar_label.Label

val star_to_l3 : Label.t -> Label.t
(** Replace every ⋆ entry with level 3: what a label means to someone
    who holds none of its privileges. *)

val cap : label:Label.t -> clearance:Label.t -> Label.t
(** A caller's observation capacity: clearance ⊔ star_to_l3(label) —
    the most tainted reply label the caller could accept by raising
    its own label. Sent on the wire as [c_clear]. *)

val to_wire : Names.t -> Label.t -> (Wire.wlabel, string) result
(** Rewrite a local label into wire names. [Error] when any
    non-default entry's category has no wire binding on this node:
    such a label cannot be expressed cluster-wide and the message
    must not leave the node (dropping the entry would declassify). *)

val of_wire :
  resolve:(int64 -> Histar_label.Category.t) ->
  trusted:(int64 -> bool) ->
  Wire.wlabel ->
  Label.t
(** Rewrite an incoming wire label into local categories. [resolve]
    maps (creating on first sight) wire names to local twins;
    [trusted] says whether the sending node may assert ⋆ for a wire
    name — untrusted ⋆, and any wire J, clamp to level 3, so an
    untrusted relay can raise but never lower secrecy. *)

val admit :
  lt:Label.t ->
  ct:Label.t ->
  lg:Label.t ->
  gclear:Label.t ->
  rl:Label.t ->
  rc:Label.t ->
  lv:Label.t ->
  (unit, string) result
(** The §3.5 gate-invocation check over translated labels, mirroring
    [Model.check_gate_invoke] clause for clause (same order, same
    refusal strings), so conformance tests can equate remote refusals
    with the model's local refusals. *)
