(** Scale-out web cluster over lib/dist (§6 stretched across nodes):
    a front-end balancer node spraying requests over N stateless app
    server nodes that share a user database node, with each user's
    private record tainted by its own category end-to-end.

    The db exports user categories trusting only the balancer; app
    servers asserting a user's ⋆ get clamped to taint at the db, so a
    compromised app server can read exactly the records of requests
    it is currently serving — the paper's §6.1 isolation argument at
    node granularity. Client responses are sealed under a
    password-derived session key (the stand-in for SSL), so no hub
    frame ever carries a record or password in plaintext.

    Everything is seeded and driven by {!Histar_dist.Cluster}, so a
    run — including failover under lib/faults link flaps — is
    bit-reproducible. *)

module Category = Histar_label.Category

type t

val build :
  ?app_nodes:int ->
  ?user_count:int ->
  ?seed:int64 ->
  ?work_us:int ->
  ?cooldown_ms:int ->
  unit ->
  t
(** Assemble the cluster: node 0 = balancer (dual-homed on the front
    and backbone hubs), nodes 1..N = app servers, node N+1 = db.
    [work_us] is the modeled per-request rendering cost on an app
    node (the serial resource the scale benchmark measures);
    [cooldown_ms] is how long (on the balancer's clock) a backend
    stays out of rotation after a transport failure before it is
    probed again. *)

(** {1 Topology access (tests, benchmarks)} *)

val cluster : t -> Histar_dist.Cluster.t
val front_hub : t -> Histar_net.Hub.t
val back_hub : t -> Histar_net.Hub.t
val balancer : t -> Histar_core.Kernel.t
val db_kernel : t -> Histar_core.Kernel.t
val app_kernel : t -> int -> Histar_core.Kernel.t

val app_mac : t -> int -> string
(** Backbone MAC of app node [i] — the handle for
    [Hub.set_link_faults] when killing a node mid-run. *)

val app_clock : t -> int -> Histar_util.Sim_clock.t
val balancer_clock : t -> Histar_util.Sim_clock.t

val users : t -> (string * string) array
(** (user, password) pairs provisioned in the db. *)

val secret_of : t -> string -> string
(** The plaintext record provisioned for a user (for asserting what
    must and must not appear in captures and replies). *)

val served : t -> int array
(** Per-app-node request counts (host-side observability). *)

val failovers : t -> int
(** Requests re-sprayed after a transport-level backend failure. *)

(** {1 Load driving} *)

type outcome = {
  o_user : string;
  o_request : string;
  o_reply : string;  (** unsealed reply as the client read it *)
}

val run_load :
  t -> ?concurrency:int -> (string * string * string) array -> bool * outcome array
(** Drive an array of (user, password, op) requests from kernel-less
    client hosts on the front hub; op ["user"] renders that user's
    page. Returns whether every request completed, plus per-request
    outcomes in order. *)

val clock_snapshot : t -> int64 list

val elapsed_since : t -> int64 list -> int64
(** Makespan: the largest advance of any clock in the system since
    the snapshot. *)
