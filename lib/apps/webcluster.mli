(** Scale-out web cluster over lib/dist (§6 stretched across nodes):
    a front-end balancer node spraying requests over N stateless app
    server nodes backed by a *sharded* user database — D db nodes,
    each owning the consistent-hash arc of users whose categories it
    minted — with each user's private record tainted by its own
    category end-to-end.

    Each shard exports only its own users' categories, trusting only
    the balancer; app servers asserting a user's ⋆ get clamped to
    taint at the owning shard, so a compromised app server can read
    exactly the records of requests it is currently serving — the
    paper's §6.1 isolation argument at node granularity, now per
    shard. Client responses are sealed under a password-derived
    session key (the stand-in for SSL), so no hub frame ever carries
    a record or password in plaintext.

    Robustness story (this is the fault-tolerance drill rig):

    - {!kill_shard} powers a db node off — MAC detached, kernel
      dropped from the schedule, volatile state gone. Unaffected
      users keep being served; affected users are *refused* (never
      mis-admitted) while the balancer's capped-exponential-backoff
      health table ({!Histar_dist.Distd.Peer_health}) routes around
      the corpse, probing it ever more rarely.
    - {!recover_shard} brings it back from its own single-level
      store: [Store.recover] + [fsck], [Kernel.recover], then the
      persisted keeper thread — whose checkpointed label still owns
      every category the shard minted — is re-armed to re-bind the
      original wire names (identity preserved, no re-mint) and
      re-register services. The shard re-enters rotation at the next
      probe.
    - {!rebalance_user} migrates one user's arc to a live shard:
      admission *refused* during the handoff window (never
      mis-routed), record captured from a [Kernel.fork] branch of
      the live source, re-created on the target under a
      directory-delegated twin of the same wire name, retired at the
      source, both sides checkpointed before the ring commit.
    - Crash plans ([crash:node=..,at=..,restart=..] sections of
      [HISTAR_FAULTS]) arm kill/recover against global virtual time,
      composable with disk- and net-fault sections of the same
      schedule.

    Everything is seeded and driven by {!Histar_dist.Cluster}, so a
    run — including shard death, store recovery and rebalancing under
    combined fault schedules — is bit-reproducible. *)

module Category = Histar_label.Category

type t

val build :
  ?app_nodes:int ->
  ?db_shards:int ->
  ?user_count:int ->
  ?seed:int64 ->
  ?work_us:int ->
  ?cooldown_ms:int ->
  ?faults:Histar_faults.Faults.Schedule.t ->
  unit ->
  t
(** Assemble the cluster: node 0 = balancer (dual-homed on the front
    and backbone hubs), nodes 1..N = app servers, nodes N+1..N+D = db
    shards (D = [db_shards], default [HISTAR_DIST_SHARDS]). Each
    shard gets its own virtual disk and single-level store; user
    records and the shard's keeper thread are checkpointed at
    provisioning time. [work_us] is the modeled per-request rendering
    cost on an app node (the serial resource the scale benchmark
    measures); [cooldown_ms] seeds the balancer's backoff table
    (default [HISTAR_DIST_COOLDOWN_MS]). [faults] arms the backbone
    hub (net sections), every shard disk (disk sections) and the
    kill/restart driver (crash sections) from one schedule. *)

(** {1 Topology access (tests, benchmarks)} *)

val cluster : t -> Histar_dist.Cluster.t
val front_hub : t -> Histar_net.Hub.t
val back_hub : t -> Histar_net.Hub.t
val balancer : t -> Histar_core.Kernel.t
val app_kernel : t -> int -> Histar_core.Kernel.t

val db_kernel : t -> Histar_core.Kernel.t
(** Shard 0's kernel (compatibility accessor). *)

val app_mac : t -> int -> string
(** Backbone MAC of app node [i] — the handle for
    [Hub.set_link_faults] when flapping a node mid-run. *)

val app_clock : t -> int -> Histar_util.Sim_clock.t
val balancer_clock : t -> Histar_util.Sim_clock.t

val users : t -> (string * string) array
(** (user, password) pairs provisioned across the shards. *)

val secret_of : t -> string -> string
(** The plaintext record provisioned for a user (for asserting what
    must and must not appear in captures and replies). *)

val served : t -> int array
(** Per-app-node request counts (host-side observability). *)

val failovers : t -> int
(** Requests re-sprayed after a transport-level backend failure. *)

val handoff_refusals : t -> int
(** Requests refused because their user's arc was mid-handoff. *)

(** {1 Shards} *)

val ring : t -> Histar_dist.Ring.t
val shard_count : t -> int

val shard_of_user : t -> string -> int option
(** Index (0-based) of the shard whose arc currently owns the user. *)

val shard_node_id : t -> int -> int
(** Cluster node id of shard [k] (for crash-plan [node=] fields). *)

val shard_kernel : t -> int -> Histar_core.Kernel.t
(** Shard [k]'s *current* kernel — a new object after recovery. *)

val shard_store : t -> int -> Histar_store.Store.t
(** Shard [k]'s current store handle (fsck it after recovery). *)

val shard_alive : t -> int -> bool
val shard_users : t -> int -> string list

val kill_shard : t -> int -> unit
(** Power shard [k] off: detach its backbone MAC, drop its kernel
    from the schedule. Volatile state is lost; the disk survives.
    Idempotent while dead. *)

val recover_shard : t -> int -> unit
(** Store-based recovery of a dead shard [k]; see the module
    preamble. Raises if the recovered store fails [fsck] or the
    persisted index is missing. No-op while alive. *)

val rebalance_user :
  t -> user:string -> to_shard:int -> (unit, string) result
(** Migrate [user]'s record and category to live shard [to_shard],
    refusing (never mis-routing) admissions for that user during the
    handoff window. Drives the cluster internally until both sides
    have checkpointed. *)

(** {1 Load driving} *)

type outcome = {
  o_user : string;
  o_request : string;
  o_reply : string;  (** unsealed reply as the client read it *)
}

val run_load :
  t -> ?concurrency:int -> (string * string * string) array -> bool * outcome array
(** Drive an array of (user, password, op) requests from kernel-less
    client hosts on the front hub; op ["user"] renders that user's
    page. Returns whether every request completed, plus per-request
    outcomes in order. Crash plans armed via [?faults] fire during
    the drive at their scheduled virtual times. *)

val clock_snapshot : t -> int64 list

val elapsed_since : t -> int64 list -> int64
(** Makespan: the largest advance of any clock in the system since
    the snapshot. *)
