(* Scale-out web cluster over lib/dist: the §6 web server stretched
   across nodes, with each user's category enforced end-to-end and
   the user database sharded so no single node's death takes down
   authentication cluster-wide.

   Topology (all virtual, all deterministic):

     clients ── front hub ── balancer(node 0) ── backbone hub ──┬─ app 1
                                                                ├─ ...
                                                                ├─ app A
                                                                ├─ db shard A+1
                                                                ├─ ...
                                                                └─ db shard A+D

   The balancer is dual-homed: a front netd on the client hub and a
   backbone netd carrying distd traffic. App servers are stateless
   page renderers. Users are sharded across D db nodes by consistent
   hash of the user's category identity ({!Ring}); each shard owns
   only its own users' categories, exports them trusting only the
   balancer, and persists everything — records, categories, its
   parked keeper thread — in its own single-level store.

   Per-request label story: a shard exports each of its user
   categories with trust = [balancer] only. A front request
   "user pass op" is authenticated against the owning shard's "auth"
   service, whose reply grants the user's category — so the balancer
   worker *owns* the user's taint for the rest of the request,
   exactly like the §6.2 login sequence, but with the grant crossing
   the wire. The worker then calls an app server's "page" service at
   its {c_u⋆} label; the app honors the ⋆ (balancer is trusted) and
   its proxy fetches the record from the owning shard, where the
   app's asserted ⋆ is *clamped to 3* (app servers are not trusted to
   speak for user categories): the shard-side proxy runs tainted
   {c_u 3} and can read exactly that user's record and nothing else —
   a compromised app server can leak only the requests it was already
   handling, never another user's record (the paper's §6.1 argument,
   node-granular). The reply chain carries the taint back; the
   balancer absorbs it with its ⋆ and seals the page to the client
   under a password-derived session key, standing in for SSL. No hub
   frame ever carries a record or password in plaintext.

   Session tokens: a successful auth caches a *sealed* token
   (user, wire name, password hash, expiry) at the front end. A later
   request inside the TTL skips the auth round-trip to the shard —
   but stays label-preserving: the worker still acquires the user's ⋆
   through the local grant gate left by the first claim, so every
   label check downstream is exactly the one the slow path runs.
   Wrong passwords miss the token (hash mismatch) and fall through to
   real auth.

   Failover (apps and shards alike): a transport failure marks the
   node down in a {!Distd.Peer_health} table — capped exponential
   backoff, probes counted in [net.dist_probes] — and requests route
   around it. Label refusals are never retried — they are answers.

   Shard death and recovery: killing a shard detaches its backbone
   MAC and removes its kernel from the cluster schedule (volatile
   state is gone). Affected users are *refused* (auth/get transport
   errors) — never mis-admitted — while unaffected users keep being
   served. Recovery is store-based: [Store.recover]+[fsck] from the
   shard's own disk, [Kernel.recover], then the persisted keeper
   thread — whose label still owns every category the shard ever
   minted — is re-armed with [restart_thread] to re-bind wire names
   (identity is preserved: no re-mint, so remote twins and directory
   trust stay valid) and re-register services. The shard then
   re-enters rotation on the next successful probe.

   Rebalance: migrating a user to another shard marks the owning ring
   arc *draining* — admission refused, never mis-routed — captures
   the record from a [Kernel.fork] branch of the live source (PR-6),
   re-creates it on the target under the target's twin of the same
   wire name (the origin delegates speaking-for trust), retires it at
   the source, and commits the arc. Both sides checkpoint before the
   commit, so a crash after rebalance recovers the post-move world. *)

module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Metrics = Histar_metrics.Metrics
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
module Sim_host = Histar_net.Sim_host
module Sim_clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Checksum = Histar_util.Checksum
module Seal = Histar_crypto.Seal
module Disk = Histar_disk.Disk
module Store = Histar_store.Store
module Faults = Histar_faults.Faults
module Wire = Histar_dist.Wire
module Names = Histar_dist.Names
module Distd = Histar_dist.Distd
module Ring = Histar_dist.Ring
module Cluster = Histar_dist.Cluster

let l1 = Label.make Level.L1
let l3 = Label.make Level.L3

type node = {
  n_id : int;
  n_kernel : Kernel.t;
  n_clock : Sim_clock.t;
  n_netd : Netd.t;
  n_dist : Distd.t;
}

(* One user-db shard. The disk outlives the kernel: a kill drops the
   kernel (volatile state), a recover rebuilds one from the disk. *)
type shard = {
  sh_idx : int;  (* 0..D-1 *)
  sh_id : int;  (* cluster node id *)
  sh_disk : Disk.t;
  mutable sh_store : Store.t;
  mutable sh_node : node;
  mutable sh_alive : bool;
  mutable sh_users : string list;  (* owned users, stable order *)
  sh_records : (string, Category.t * Types.oid * int64) Hashtbl.t;
      (* user -> (local cat, record segment oid, wire name); host-side
         cache, rebuilt from the persisted index on recovery *)
  mutable sh_index : Types.oid;  (* index segment: the recovery map *)
  mutable sh_keepers : (Types.oid * string list) list;
      (* parked keeper threads and the users each owns; every keeper's
         persisted label carries ⋆ of its users' categories, which is
         what makes post-recovery re-export possible *)
}

type t = {
  cluster : Cluster.t;
  front : Hub.t;
  back : Hub.t;
  edge_clock : Sim_clock.t;  (* shared by kernel-less client hosts *)
  key : int64;
  directory : Names.Directory.t;
  balancer : node;
  apps : node array;
  shards : shard array;
  ring : Ring.t;  (* shared routing table: balancer + apps *)
  health : Distd.Peer_health.t;  (* balancer-side, apps and shards *)
  users : (string * string) array;  (* user, password *)
  secrets : (string * string) list;  (* user, plaintext record *)
  served : int array;  (* per app node, host-side observability *)
  mutable rotation : int;
  mutable failovers : int;
  mutable handoff_refused : int;
  work_us : int;
  session_seal : Seal.t;
  sessions : (string, string) Hashtbl.t;  (* user -> sealed token *)
  mutable node_faults : Faults.Node_faults.t option;
}

let m_requests = Metrics.counter "webcluster.requests"
let m_failovers = Metrics.counter "webcluster.failovers"
let m_session_hits = Metrics.counter "webcluster.session_hits"
let m_handoff_refused = Metrics.counter "webcluster.handoff_refused"
let m_shard_kills = Metrics.counter "webcluster.shard_kills"
let m_shard_recoveries = Metrics.counter "webcluster.shard_recoveries"
let m_rebalances = Metrics.counter "webcluster.rebalances"

(* --- addressing --- *)

let back_ip i = Printf.sprintf "10.1.0.%d" (i + 1)
let back_mac i = Printf.sprintf "bk%02d" i
let dist_port = 7000
let front_port = 80

(* Session sealing key, computable by client and balancer alike from
   the password — the stand-in for an SSL handshake. *)
let session_key ~user ~password =
  Checksum.fnv64 (Printf.sprintf "sess:%s:%s" user password)

(* Ring key: the user's category identity. The category itself is
   minted by whichever shard the ring assigns, so the stable name is
   the user the category stands for. *)
let user_key user = "user:" ^ user
let pw_hash pass = Checksum.fnv64 ("pw:" ^ pass)

let shard_by_id t id =
  let found = ref None in
  Array.iter (fun sh -> if sh.sh_id = id then found := Some sh) t.shards;
  !found

(* --- construction --- *)

let mk_node ~cluster ~back ~key ~directory ~peers ~seed ?store i =
  let n_clock = Sim_clock.create () in
  let n_kernel =
    Kernel.create ~seed:(Int64.add seed (Int64.of_int (1000 * (i + 1))))
      ~clock:n_clock ?store ()
  in
  Cluster.add_kernel cluster n_kernel;
  let root = Kernel.root n_kernel in
  let n_netd =
    Netd.start n_kernel ~hub:back ~container:root
      ~ip:(Addr.ip_of_string (back_ip i))
      ~mac:(back_mac i) ()
  in
  let names = Names.create ~node_id:i ~key ~directory in
  let n_dist =
    Distd.start n_kernel ~netd:n_netd ~names ~key ~container:root
      ~port:dist_port ~peers ()
  in
  { n_id = i; n_kernel; n_clock; n_netd; n_dist }

(* Index segment: one "user wire cat seg" line per record, written at
   {1} on every membership change and read host-side after a crash to
   rebuild the shard's record table. The store persists it with
   everything else — this is the shard's own durable name service. *)
let render_index sh =
  String.concat ""
    (List.map
       (fun user ->
         let c, seg, wire = Hashtbl.find sh.sh_records user in
         Printf.sprintf "%s %Ld %Ld %Ld\n" user wire (Category.to_int64 c) seg)
       sh.sh_users)

let parse_index data =
  String.split_on_char '\n' data
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | [ user; wire; cat; seg ] ->
             Some
               ( user,
                 Int64.of_string wire,
                 Category.of_int64 (Int64.of_string cat),
                 Int64.of_string seg )
         | _ -> None)

(* Park a keeper thread: alive (so the checkpoint keeps it, label and
   all) but dormant. The hour-long timer only fires if nothing else in
   the cluster ever wants to run. *)
let rec park () =
  Sys.sleep_until_ns (Int64.add (Sys.clock_ns ()) 3_600_000_000_000L);
  park ()

let rec build ?(app_nodes = 2) ?db_shards ?(user_count = 4) ?(seed = 7L)
    ?(work_us = 800) ?cooldown_ms ?faults () =
  let db_shards =
    match db_shards with Some d -> max 1 d | None -> Distd.Tuning.shards ()
  in
  let cluster = Cluster.create () in
  let edge_clock = Sim_clock.create () in
  let front_clock = Sim_clock.create () in
  let back_clock = Sim_clock.create () in
  (* A fast, quiet backbone and edge: the interesting serial resource
     in the scale benchmark must be app CPU, not wire time. *)
  let front = Hub.create ~bandwidth_bps:1e9 ~latency_us:10.0 ~clock:front_clock () in
  let back = Hub.create ~bandwidth_bps:1e9 ~latency_us:10.0 ~clock:back_clock () in
  (match faults with
  | Some sched -> Hub.set_faults back (Faults.Net_faults.create sched)
  | None -> ());
  let key = Int64.logxor 0x6469737463616673L seed in
  let directory = Names.Directory.create () in
  let peers i = Addr.v (back_ip i) dist_port in
  let node = mk_node ~cluster ~back ~key ~directory ~peers ~seed in
  let balancer = node 0 in
  let apps = Array.init app_nodes (fun i -> node (i + 1)) in
  let shards =
    Array.init db_shards (fun k ->
        let id = app_nodes + 1 + k in
        let sh_clock = Sim_clock.create () in
        (* The disk is the shard's durable identity; the kernel is
           expendable. Disk faults from the schedule apply here. *)
        let disk_faults =
          match faults with
          | Some sched -> Faults.Disk_faults.create sched
          | None -> None
        in
        let sh_disk = Disk.create ?faults:disk_faults ~clock:sh_clock () in
        let sh_store = Store.format ~disk:sh_disk () in
        (* mk_node builds its own clock; the disk keeps charging the
           clock it was created with, which for the initial kernel we
           make the same object. *)
        let n_clock = sh_clock in
        let n_kernel =
          Kernel.create
            ~seed:(Int64.add seed (Int64.of_int (1000 * (id + 1))))
            ~clock:n_clock ~store:sh_store ()
        in
        Cluster.add_kernel cluster n_kernel;
        let root = Kernel.root n_kernel in
        let n_netd =
          Netd.start n_kernel ~hub:back ~container:root
            ~ip:(Addr.ip_of_string (back_ip id))
            ~mac:(back_mac id) ()
        in
        let names = Names.create ~node_id:id ~key ~directory in
        let n_dist =
          Distd.start n_kernel ~netd:n_netd ~names ~key ~container:root
            ~port:dist_port ~peers ()
        in
        {
          sh_idx = k;
          sh_id = id;
          sh_disk;
          sh_store;
          sh_node = { n_id = id; n_kernel; n_clock; n_netd; n_dist };
          sh_alive = true;
          sh_users = [];
          sh_records = Hashtbl.create 8;
          sh_index = 0L;
          sh_keepers = [];
        })
  in
  let ring = Ring.create (Array.to_list (Array.map (fun sh -> sh.sh_id) shards)) in
  let rng = Rng.create (Int64.logxor seed 0x77656263L) in
  let users =
    Array.init user_count (fun i ->
        ( Printf.sprintf "user%d" i,
          Printf.sprintf "pw%d-%08Lx" i (Int64.logand (Rng.next64 rng) 0xffffffffL) ))
  in
  let secrets =
    Array.to_list
      (Array.map
         (fun (u, _) ->
           (u, Printf.sprintf "SECRET-%s-%08Lx" u
                 (Int64.logand (Rng.next64 rng) 0xffffffffL)))
         users)
  in
  let health =
    match cooldown_ms with
    (* An explicit cooldown scales the whole backoff schedule: cap at
       4x so a healed node re-enters within a few request batches
       even after a long outage drove the window to the cap. *)
    | Some cd -> Distd.Peer_health.create ~cooldown_ms:cd ~cap_ms:(4 * cd) ()
    | None -> Distd.Peer_health.create ()
  in
  let t =
    {
      cluster;
      front;
      back;
      edge_clock;
      key;
      directory;
      balancer;
      apps;
      shards;
      ring;
      health;
      users;
      secrets;
      served = Array.make app_nodes 0;
      rotation = 0;
      failovers = 0;
      handoff_refused = 0;
      work_us;
      session_seal = Seal.create ~key:(Int64.logxor key 0x746f6b656e73L);
      sessions = Hashtbl.create 16;
      node_faults = None;
    }
  in
  Array.iter (fun sh -> setup_shard t sh) t.shards;
  Array.iteri (fun i _ -> setup_app t i) apps;
  setup_balancer t;
  (* Provision to quiescence inside build: the keepers mint, export,
     write and checkpoint now (charging disk time to their own
     shards' clocks), and the joint clock sync makes that cost part
     of the baseline — a snapshot taken after [build] measures
     serving, not provisioning. *)
  Cluster.settle cluster;
  Cluster.sync_clocks cluster;
  (* The edge clock joins the cluster only when run_load registers
     client hosts — bring it to the same baseline by hand. *)
  let skew = Int64.sub (Cluster.global_now_ns cluster) (Sim_clock.now_ns edge_clock) in
  if Int64.compare skew 0L > 0 then Sim_clock.advance_ns edge_clock skew;
  (match faults with Some sched -> arm_crashes t sched | None -> ());
  t

(* --- db shards: sharded record store, auth and get services --- *)

(* (Re-)register the shard's services against its current record
   table. The auth label lists every owned category at ⋆ — the actual
   privilege comes from the grant gates installed at export/rebind
   time, which the conn thread claims per admission. Runs from keeper
   threads (initial boot, recovery, rebalance import/retire); each
   call bumps the distd service version, invalidating per-connection
   admission memos built against the old shard membership. *)
and register_services t sh =
  let d = sh.sh_node in
  let auth_label =
    List.fold_left
      (fun acc user ->
        let c, _, _ = Hashtbl.find sh.sh_records user in
        Label.set acc c Level.Star)
      l1 sh.sh_users
  in
  Distd.register d.n_dist ~service:"auth" ~label:auth_label ~clearance:l3
    (fun args ->
      match String.split_on_char ' ' args with
      | [ user; pass ] -> (
          match Hashtbl.find_opt sh.sh_records user with
          | None -> ("denied", [])
          | Some (c, _, _) -> (
              match Array.find_opt (fun (u, _) -> u = user) t.users with
              | Some (_, pw) when pw = pass -> ("ok", [ c ])
              | Some _ | None -> ("denied", [])))
      | _ -> ("denied", []));
  Distd.register d.n_dist ~service:"get" ~label:l1 ~clearance:l3 (fun user ->
      match Hashtbl.find_opt sh.sh_records user with
      | None -> ("no such user", [])
      | Some (_, seg, _) ->
          let root = Kernel.root sh.sh_node.n_kernel in
          (Sys.segment_read (Types.centry root seg) (), []))

(* Rewrite the persisted index after a membership change. The caller
   must run on a thread of the shard's kernel. *)
and rewrite_index sh =
  let root = Kernel.root sh.sh_node.n_kernel in
  let data = render_index sh in
  let e = Types.centry root sh.sh_index in
  Sys.segment_resize e (String.length data);
  Sys.segment_write e data

and setup_shard t sh =
  let d = sh.sh_node in
  let root = Kernel.root d.n_kernel in
  let mine =
    Array.to_list t.users
    |> List.filter (fun (u, _) -> Ring.owner t.ring (user_key u) = Some sh.sh_id)
    |> List.map fst
  in
  sh.sh_users <- mine;
  (* The keeper does all provisioning and then parks *owning every
     category it minted*: its thread label is checkpointed with the
     rest of the shard, and recovery re-arms exactly this thread so
     the ⋆s needed to re-export come back from the store, not from a
     trusted host. *)
  let keeper =
    Kernel.spawn d.n_kernel ~label:l1 ~clearance:l3 ~container:root
      ~name:(Printf.sprintf "db-keeper-%d" sh.sh_idx)
      (fun () ->
        List.iter
          (fun user ->
            let c = Sys.cat_create () in
            (* Only the balancer may speak for user categories. *)
            let wire = Distd.export_owned d.n_dist ~trust:[ 0 ] c in
            let secret = List.assoc user t.secrets in
            let seg =
              Sys.segment_create ~container:root
                ~label:(Label.of_list [ (c, Level.L3) ] Level.L1)
                ~quota:4096L ~len:(String.length secret)
                (Printf.sprintf "rec-%s" user)
            in
            Sys.segment_write (Types.centry root seg) secret;
            Hashtbl.replace sh.sh_records user (c, seg, wire))
          mine;
        let data = render_index sh in
        let idx =
          Sys.segment_create ~container:root ~label:l1 ~quota:16384L
            ~len:(String.length data) "db-index"
        in
        Sys.segment_write (Types.centry root idx) data;
        sh.sh_index <- idx;
        register_services t sh;
        (* Checkpoint: records, categories, the index and this very
           thread (with its ⋆-laden label) become durable. *)
        Sys.sync_all ();
        park ())
  in
  sh.sh_keepers <- [ (keeper, mine) ]

(* --- shard death, recovery, rebalance --- *)

and kill_shard t k =
  let sh = t.shards.(k) in
  if sh.sh_alive then begin
    sh.sh_alive <- false;
    Metrics.Counter.incr m_shard_kills;
    (* Power off: backbone MAC gone (frames to it drop as no_route),
       kernel out of the schedule — volatile state is never consulted
       again. The disk, and only the disk, survives. *)
    Hub.detach t.back ~mac:(back_mac sh.sh_id);
    Cluster.remove_kernel t.cluster sh.sh_node.n_kernel
  end

and recover_shard t k =
  let sh = t.shards.(k) in
  if not sh.sh_alive then begin
    Metrics.Counter.incr m_shard_recoveries;
    (* Single-level store recovery: snapshot + committed WAL prefix,
       then a full fsck — a shard that cannot prove its disk clean
       does not re-enter rotation (fsck raises). *)
    let store = Store.recover ~disk:sh.sh_disk in
    Store.fsck store;
    sh.sh_store <- store;
    let kern = Kernel.recover ~store in
    Cluster.add_kernel t.cluster kern;
    let root = Kernel.root kern in
    let netd =
      Netd.start kern ~hub:t.back ~container:root
        ~ip:(Addr.ip_of_string (back_ip sh.sh_id))
        ~mac:(back_mac sh.sh_id) ()
    in
    let names =
      Names.create ~node_id:sh.sh_id ~key:t.key ~directory:t.directory
    in
    let peers i = Addr.v (back_ip i) dist_port in
    let dist =
      Distd.start kern ~netd ~names ~key:t.key ~container:root ~port:dist_port
        ~peers ()
    in
    sh.sh_node <-
      { n_id = sh.sh_id; n_kernel = kern; n_clock = Kernel.clock kern;
        n_netd = netd; n_dist = dist };
    (* Rebuild the host-side record table from the persisted index. *)
    (match Kernel.segment_data kern sh.sh_index with
    | None -> failwith "recover_shard: index segment missing after recovery"
    | Some data ->
        Hashtbl.reset sh.sh_records;
        List.iter
          (fun (user, wire, cat, seg) ->
            Hashtbl.replace sh.sh_records user (cat, seg, wire))
          (parse_index data));
    sh.sh_users <-
      List.filter (fun u -> Hashtbl.mem sh.sh_records u)
        (List.concat_map (fun (_, us) -> us) sh.sh_keepers);
    (* Re-arm every keeper: each recovers halted with its persisted
       label — still owning its users' categories — and re-binds the
       original wire names (no re-mint: remote twins and directory
       trust stay valid) before re-registering services. *)
    List.iter
      (fun (koid, kusers) ->
        Kernel.restart_thread kern koid (fun () ->
            List.iter
              (fun user ->
                match Hashtbl.find_opt sh.sh_records user with
                | Some (cat, _, wire) ->
                    Distd.rebind_owned dist ~wire cat
                | None -> ())
              kusers;
            register_services t sh;
            park ()))
      sh.sh_keepers;
    sh.sh_alive <- true;
    (* Boot to quiescence (netd init, listener parked in accept,
       keepers re-registered) before any traffic hits the shard. *)
    Cluster.settle t.cluster
  end

(* Pump a node-crash plan against global virtual time. *)
and arm_crashes t sched =
  match Faults.Node_faults.create sched with
  | None -> ()
  | Some nf ->
      t.node_faults <- Some nf;
      Cluster.set_on_tick t.cluster
        (Some
           (fun now_ns ->
             List.iter
               (function
                 | Faults.Node_faults.Kill n -> (
                     match shard_by_id t n with
                     | Some sh -> kill_shard t sh.sh_idx
                     | None -> ())
                 | Faults.Node_faults.Restart n -> (
                     match shard_by_id t n with
                     | Some sh -> recover_shard t sh.sh_idx
                     | None -> ()))
               (Faults.Node_faults.due nf ~now_ns)))

(* --- app nodes: stateless page rendering --- *)

and setup_app t i =
  let a = t.apps.(i) in
  (* One rendering CPU per node: concurrent proxies' virtual sleeps
     would overlap (sleeping threads don't contend), so without this
     token an 8-node cluster would be no faster than one node. The
     check/set pair is atomic under cooperative scheduling — nothing
     yields between them. *)
  let busy = ref false in
  let rec render () =
    if !busy then begin
      Sys.usleep ((t.work_us / 4) + 50);
      render ()
    end
    else begin
      busy := true;
      Sys.usleep t.work_us;
      busy := false
    end
  in
  Distd.register a.n_dist ~service:"page" ~label:l1 ~clearance:l3
    (fun args ->
      (* args = "user target": render [target]'s page for [user]. The
         proxy runs at the balancer's translated label {c_user ⋆} —
         the app node honors the ⋆ because the balancer is trusted —
         and the owning shard clamps it back to taint, so the fetch
         below can only read [target = user]. *)
      t.served.(i) <- t.served.(i) + 1;
      render ();  (* modeled rendering cost, serial per node *)
      match String.split_on_char ' ' args with
      | [ user; target ] -> (
          (* Route the fetch by the *target*'s ring arc: records live
             where their category was minted (or moved). A draining
             arc refuses — never mis-routes. *)
          match Ring.route t.ring (user_key target) with
          | `No_members -> ("ERR no db shard", [])
          | `Handoff _ ->
              t.handoff_refused <- t.handoff_refused + 1;
              Metrics.Counter.incr m_handoff_refused;
              ("REFUSED handoff in progress", [])
          | `Node sid -> (
              match Distd.call a.n_dist ~node:sid ~service:"get" target with
              | Ok (secret, _) ->
                  (Printf.sprintf "<page user=%s>%s</page>" user secret, [])
              | Error (Distd.Refused m) -> ("REFUSED " ^ m, [])
              | Error (Distd.Remote m) -> ("DENIED " ^ m, [])
              | Error (Distd.Transport m) -> ("ERR db transport: " ^ m, [])))
      | _ -> ("ERR bad page args", []))

(* --- balancer: front demux, login, session cache, rotation --- *)

and pick_app t now =
  let n = Array.length t.apps in
  let rec scan tried =
    if tried >= n then None
    else
      let i = (t.rotation + tried) mod n in
      match
        Distd.Peer_health.usable t.health ~node:t.apps.(i).n_id ~now_ns:now
      with
      | `Yes | `Probe ->
          t.rotation <- (i + 1) mod n;
          Some i
      | `No -> scan (tried + 1)
  in
  scan 0

and call_page t ~user ~op =
  let args = user ^ " " ^ op in
  let attempts = (2 * Array.length t.apps) + 4 in
  let rec go n =
    if n <= 0 then "ERR no backend"
    else
      match pick_app t (Sys.clock_ns ()) with
      | None ->
          (* every node in backoff: wait a slice and rescan — an
             expired window turns into a probe *)
          Sys.usleep 50_000;
          go (n - 1)
      | Some i -> (
          let nid = t.apps.(i).n_id in
          match
            Distd.call t.balancer.n_dist ~node:nid ~service:"page" args
          with
          | Ok (page, _) ->
              Distd.Peer_health.ok t.health ~node:nid;
              page
          | Error (Distd.Transport _) ->
              Distd.Peer_health.failed t.health ~node:nid
                ~now_ns:(Sys.clock_ns ());
              Distd.pool_drop_all t.balancer.n_dist ~node:nid;
              t.failovers <- t.failovers + 1;
              Metrics.Counter.incr m_failovers;
              go (n - 1)
          | Error (Distd.Refused m) -> "REFUSED " ^ m
          | Error (Distd.Remote m) -> "DENIED " ^ m)
  in
  go attempts

(* Session tokens: "user|wire|pwhash|expiry" sealed under a key only
   the balancer holds. A hit re-acquires the user's ⋆ through the
   LOCAL grant gate (claim_grants on the cached wire name) — the
   label path is identical to the slow path; only the shard
   round-trip is elided. *)
and session_token t ~user ~wire ~pwh ~expiry =
  let plain = Printf.sprintf "%s|%Ld|%Ld|%Ld" user wire pwh expiry in
  Seal.seal_tagged t.session_seal
    ~nonce:(Checksum.fnv64 ("tok:" ^ user))
    plain

and session_check t ~user ~pass =
  match Hashtbl.find_opt t.sessions user with
  | None -> None
  | Some sealed -> (
      match
        Seal.unseal_tagged t.session_seal
          ~nonce:(Checksum.fnv64 ("tok:" ^ user))
          sealed
      with
      | None -> None
      | Some plain -> (
          match String.split_on_char '|' plain with
          | [ u; wire; pwh; expiry ] when u = user -> (
              try
                let wire = Int64.of_string wire in
                let pwh = Int64.of_string pwh in
                let expiry = Int64.of_string expiry in
                if
                  Int64.equal pwh (pw_hash pass)
                  && Int64.compare (Sys.clock_ns ()) expiry < 0
                then Some wire
                else None
              with _ -> None)
          | _ -> None))

(* Authenticate [user]/[pass]; on success the calling thread owns the
   user's category. Refusal semantics: a user whose arc is draining
   or whose shard is down/backing-off is *refused* — never sent to a
   node that does not provably own the category. *)
and auth_user t ~user ~pass =
  match session_check t ~user ~pass with
  | Some wire ->
      Metrics.Counter.incr m_session_hits;
      ignore (Distd.claim_grants t.balancer.n_dist [ wire ] : Category.t list);
      `Ok
  | None -> (
      match Ring.route t.ring (user_key user) with
      | `No_members -> `Err "no db shard"
      | `Handoff _ ->
          t.handoff_refused <- t.handoff_refused + 1;
          Metrics.Counter.incr m_handoff_refused;
          `Refused "handoff in progress"
      | `Node sid -> (
          match
            Distd.Peer_health.usable t.health ~node:sid
              ~now_ns:(Sys.clock_ns ())
          with
          | `No -> `Err "shard down (backing off)"
          | `Yes | `Probe -> (
              match
                Distd.call t.balancer.n_dist ~node:sid ~service:"auth"
                  (user ^ " " ^ pass)
              with
              | Ok ("ok", grants) ->
                  Distd.Peer_health.ok t.health ~node:sid;
                  ignore
                    (Distd.claim_grants t.balancer.n_dist grants
                      : Category.t list);
                  (match grants with
                  | wire :: _ ->
                      let ttl_ns =
                        Int64.mul
                          (Int64.of_int (Distd.Tuning.session_ttl_ms ()))
                          1_000_000L
                      in
                      Hashtbl.replace t.sessions user
                        (session_token t ~user ~wire ~pwh:(pw_hash pass)
                           ~expiry:(Int64.add (Sys.clock_ns ()) ttl_ns))
                  | [] -> ());
                  `Ok
              | Ok (_, _) ->
                  Distd.Peer_health.ok t.health ~node:sid;
                  `Denied
              | Error (Distd.Transport m) ->
                  Distd.Peer_health.failed t.health ~node:sid
                    ~now_ns:(Sys.clock_ns ());
                  Distd.pool_drop_all t.balancer.n_dist ~node:sid;
                  `Err ("transport: " ^ m)
              | Error (Distd.Refused m) -> `Err ("refused: " ^ m)
              | Error (Distd.Remote m) -> `Err ("remote: " ^ m))))

and handle_front t front_netd sock () =
  let root = Kernel.root t.balancer.n_kernel in
  let rec read_line buf =
    match String.index_opt buf '\n' with
    | Some i -> Some (String.sub buf 0 i)
    | None -> (
        match Netd.Client.recv front_netd ~return_container:root sock with
        | Some d -> read_line (buf ^ d)
        | None -> None)
  in
  (match read_line "" with
  | None -> ()
  | Some line ->
      Metrics.Counter.incr m_requests;
      let reply_sealed ~user ~password plain =
        let seal = Seal.create ~key:(session_key ~user ~password) in
        let nonce = Int64.of_int (Hashtbl.hash (user, plain)) in
        Netd.Client.send front_netd ~return_container:root sock
          (Wire.frame_raw ~nonce (Seal.seal_tagged seal ~nonce plain))
      in
      (match String.split_on_char ' ' line with
      | [ user; pass; op ] -> (
          match auth_user t ~user ~pass with
          | `Ok ->
              let page = call_page t ~user ~op in
              reply_sealed ~user ~password:pass page
          | `Denied -> reply_sealed ~user ~password:pass "ERR auth"
          | `Refused m ->
              reply_sealed ~user ~password:pass ("REFUSED " ^ m)
          | `Err m -> reply_sealed ~user ~password:pass ("ERR auth: " ^ m))
      | _ -> ()));
  Netd.Client.close front_netd ~return_container:root sock

and setup_balancer t =
  let b = t.balancer in
  let root = Kernel.root b.n_kernel in
  let front_netd =
    Netd.start b.n_kernel ~hub:t.front ~container:root
      ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"fe00" ()
  in
  ignore
    (Kernel.spawn b.n_kernel ~label:l1 ~clearance:l3 ~container:root
       ~name:"front-demux"
       (fun () ->
         Netd.Client.listen front_netd ~return_container:root front_port;
         let n = ref 0 in
         while true do
           let sock =
             Netd.Client.accept front_netd ~return_container:root front_port
           in
           incr n;
           ignore
             (Sys.thread_create ~container:root ~label:l1 ~clearance:l3
                ~quota:262144L
                ~name:(Printf.sprintf "front-worker-%d" !n)
                (handle_front t front_netd sock)
              : Types.oid)
         done))

(* --- rebalance: migrate one user's arc to a live shard --- *)

let rebalance_user t ~user ~to_shard =
  let key = user_key user in
  let dst = t.shards.(to_shard) in
  match Ring.owner t.ring key with
  | None -> Error "rebalance: no shard owns the user"
  | Some src_id when src_id = dst.sh_id ->
      Error "rebalance: target already owns the user"
  | Some src_id -> (
      match shard_by_id t src_id with
      | None -> Error "rebalance: unknown source shard"
      | Some src when not src.sh_alive -> Error "rebalance: source is dead"
      | Some _ when not dst.sh_alive -> Error "rebalance: target is dead"
      | Some src -> (
          match Hashtbl.find_opt src.sh_records user with
          | None -> Error "rebalance: user has no record"
          | Some (_, seg_oid, wire) -> (
              match Ring.begin_handoff t.ring ~key ~target:dst.sh_id with
              | Error m -> Error m
              | Ok () ->
                  (* Admission for this arc now refuses. Capture the
                     record from a branch of the live source: the fork
                     is O(1), the branch is immutable, and the source
                     keeps serving its other users meanwhile. *)
                  let h = Kernel.fork src.sh_node.n_kernel in
                  let branch = Kernel.resume h in
                  let data =
                    match Kernel.segment_data branch seg_oid with
                    | Some d -> d
                    | None -> failwith "rebalance: record missing in branch"
                  in
                  (* The origin delegates: the target may now speak
                     for the wire name (out-of-band trust, §8). *)
                  Names.Directory.add_trust t.directory ~wire ~node:dst.sh_id;
                  let dst_done = ref false and src_done = ref false in
                  let dst_root = Kernel.root dst.sh_node.n_kernel in
                  let keeper =
                    Kernel.spawn dst.sh_node.n_kernel ~label:l1 ~clearance:l3
                      ~container:dst_root
                      ~name:(Printf.sprintf "db-keeper-in-%s" user)
                      (fun () ->
                        (* Import the twin and own it: claim through
                           the grant gate the import installs. *)
                        let cats =
                          Distd.claim_grants dst.sh_node.n_dist [ wire ]
                        in
                        let c = List.hd cats in
                        let seg =
                          Sys.segment_create ~container:dst_root
                            ~label:(Label.of_list [ (c, Level.L3) ] Level.L1)
                            ~quota:4096L ~len:(String.length data)
                            (Printf.sprintf "rec-%s" user)
                        in
                        Sys.segment_write (Types.centry dst_root seg) data;
                        Hashtbl.replace dst.sh_records user (c, seg, wire);
                        dst.sh_users <- dst.sh_users @ [ user ];
                        rewrite_index dst;
                        register_services t dst;
                        Sys.sync_all ();
                        dst_done := true;
                        park ())
                  in
                  dst.sh_keepers <- dst.sh_keepers @ [ (keeper, [ user ]) ];
                  ignore
                    (Kernel.spawn src.sh_node.n_kernel ~label:l1 ~clearance:l3
                       ~container:(Kernel.root src.sh_node.n_kernel)
                       ~name:(Printf.sprintf "rebalance-out-%s" user)
                       (fun () ->
                         Hashtbl.remove src.sh_records user;
                         src.sh_users <-
                           List.filter (fun u -> u <> user) src.sh_users;
                         src.sh_keepers <-
                           List.map
                             (fun (k, us) ->
                               (k, List.filter (fun u -> u <> user) us))
                             src.sh_keepers;
                         rewrite_index src;
                         register_services t src;
                         Sys.sync_all ();
                         src_done := true)
                     : Types.oid);
                  let finished =
                    Cluster.drive t.cluster
                      ~until:(fun () -> !dst_done && !src_done)
                      ()
                  in
                  if not finished then Error "rebalance: cluster stalled"
                  else begin
                    (* The user's session token still names the same
                       wire; drop it anyway so the next request
                       re-auths against the new owner (exercises the
                       moved path immediately). *)
                    Hashtbl.remove t.sessions user;
                    match Ring.commit_handoff t.ring ~key with
                    | Error m -> Error m
                    | Ok _ ->
                        Metrics.Counter.incr m_rebalances;
                        Ok ()
                  end)))

(* --- accessors --- *)

let cluster t = t.cluster
let front_hub t = t.front
let back_hub t = t.back
let balancer t = t.balancer.n_kernel
let app_kernel t i = t.apps.(i).n_kernel
let app_mac t i = back_mac t.apps.(i).n_id
let app_clock t i = t.apps.(i).n_clock
let balancer_clock t = t.balancer.n_clock
let users t = t.users
let secret_of t user = List.assoc user t.secrets
let served t = Array.copy t.served
let failovers t = t.failovers
let handoff_refusals t = t.handoff_refused
let ring t = t.ring
let shard_count t = Array.length t.shards
let shard_node_id t k = t.shards.(k).sh_id
let shard_kernel t k = t.shards.(k).sh_node.n_kernel
let shard_alive t k = t.shards.(k).sh_alive
let shard_users t k = t.shards.(k).sh_users
let shard_store t k = t.shards.(k).sh_store
let db_kernel t = t.shards.(0).sh_node.n_kernel

let shard_of_user t user =
  match Ring.owner t.ring (user_key user) with
  | None -> None
  | Some id -> (
      match shard_by_id t id with Some sh -> Some sh.sh_idx | None -> None)

let node_clocks t =
  (t.balancer.n_clock
  :: Array.to_list (Array.map (fun a -> a.n_clock) t.apps))
  @ Array.to_list (Array.map (fun sh -> sh.sh_node.n_clock) t.shards)
  @ [ t.edge_clock ]

(* --- client-side load driver --- *)

type outcome = { o_user : string; o_request : string; o_reply : string }

type slot = {
  s_host : Sim_host.t;
  mutable s_cur : (Stack.conn * int * string) option;
      (* conn, request index, reassembly buffer *)
}

let run_load t ?(concurrency = 4) requests =
  Cluster.settle t.cluster;
  let total = Array.length requests in
  let results = Array.make total None in
  let next = ref 0 in
  let completed = ref 0 in
  let slots =
    Array.init (min concurrency (max total 1)) (fun i ->
        let h =
          Sim_host.create ~hub:t.front ~clock:t.edge_clock
            ~ip:(Printf.sprintf "10.0.0.%d" (10 + i))
            ~mac:(Printf.sprintf "cl%02d" i)
            ()
        in
        Cluster.add_host t.cluster ~stack:(Sim_host.stack h)
          ~clock:t.edge_clock;
        { s_host = h; s_cur = None })
  in
  let finish idx reply =
    results.(idx) <- Some reply;
    incr completed
  in
  let pump_slot s =
    match s.s_cur with
    | None ->
        if !next < total then begin
          let idx = !next in
          incr next;
          let user, pass, op = requests.(idx) in
          let conn =
            Stack.connect (Sim_host.stack s.s_host)
              ~dst:(Addr.v "10.0.0.1" front_port)
          in
          Stack.send conn (Printf.sprintf "%s %s %s\n" user pass op);
          s.s_cur <- Some (conn, idx, "")
        end
    | Some (conn, idx, buf) -> (
        let buf = buf ^ Stack.recv conn in
        match Wire.deframe buf with
        | Some (nonce, body, _rest) ->
            let user, pass, _ = requests.(idx) in
            let seal = Seal.create ~key:(session_key ~user ~password:pass) in
            let reply =
              match Seal.unseal_tagged seal ~nonce body with
              | Some plain -> plain
              | None -> "ERR bad seal"
            in
            Stack.close conn;
            s.s_cur <- None;
            finish idx reply
        | None ->
            if Stack.state conn = Stack.Closed then begin
              s.s_cur <- None;
              finish idx
                (match Stack.error conn with
                | Some e -> "ERR transport: " ^ e
                | None -> "ERR connection closed")
            end
            else s.s_cur <- Some (conn, idx, buf))
  in
  let pump () =
    Array.iter pump_slot slots;
    !completed >= total
  in
  let finished = Cluster.drive t.cluster ~until:pump () in
  let outcomes =
    Array.mapi
      (fun i r ->
        let user, _, op = requests.(i) in
        {
          o_user = user;
          o_request = op;
          o_reply = (match r with Some s -> s | None -> "ERR incomplete");
        })
      results
  in
  (finished, outcomes)

(* Makespan across every clock in the system, relative to a baseline
   snapshot taken with [clock_snapshot]. *)
let clock_snapshot t = List.map Sim_clock.now_ns (node_clocks t)

let elapsed_since t snap =
  List.fold_left2
    (fun acc c t0 -> Int64.max acc (Int64.sub (Sim_clock.now_ns c) t0))
    0L (node_clocks t) snap
