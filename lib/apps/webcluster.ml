(* Scale-out web cluster over lib/dist: the §6 web server stretched
   across nodes, with each user's category enforced end-to-end.

   Topology (all virtual, all deterministic):

     clients ── front hub ── balancer(node 0) ── backbone hub ──┬─ app 1
                                                                ├─ ...
                                                                ├─ app N
                                                                └─ db

   The balancer is dual-homed: a front netd on the client hub and a
   backbone netd carrying distd traffic. App servers are stateless
   page renderers; the db node owns every user's category and record.

   Per-request label story: the db exports each user category with
   trust = [balancer] only. A front request "user pass op" is
   authenticated against the db's "auth" service, whose reply grants
   the user's category — so the balancer worker *owns* the user's
   taint for the rest of the request, exactly like the §6.2 login
   sequence, but with the grant crossing the wire. The worker then
   calls an app server's "page" service at its {c_u⋆} label; the app
   honors the ⋆ (balancer is trusted) and its proxy fetches the
   record from the db, where the app's asserted ⋆ is *clamped to 3*
   (app servers are not trusted to speak for user categories): the
   db-side proxy runs tainted {c_u 3} and can read exactly that
   user's record and nothing else — a compromised app server can leak
   only the requests it was already handling, never another user's
   record (the paper's §6.1 argument, node-granular). The reply chain
   carries the taint back; the balancer absorbs it with its ⋆ and
   seals the page to the client under a password-derived session key,
   standing in for SSL. No hub frame ever carries a record or
   password in plaintext.

   Failover: the balancer rotates over app nodes, skipping any marked
   down. A transport-level failure (connect give-up over a flapped
   link — lib/faults) marks the node down for a cooldown on the
   balancer's clock and the request retries on the next node; after
   the cooldown the node is probed again and re-enters rotation once
   healed. Label refusals are never retried — they are answers. *)

module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Metrics = Histar_metrics.Metrics
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
module Sim_host = Histar_net.Sim_host
module Sim_clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Checksum = Histar_util.Checksum
module Seal = Histar_crypto.Seal
module Wire = Histar_dist.Wire
module Names = Histar_dist.Names
module Distd = Histar_dist.Distd
module Cluster = Histar_dist.Cluster

let l1 = Label.make Level.L1
let l3 = Label.make Level.L3

type node = {
  n_id : int;
  n_kernel : Kernel.t;
  n_clock : Sim_clock.t;
  n_netd : Netd.t;
  n_dist : Distd.t;
}

type t = {
  cluster : Cluster.t;
  front : Hub.t;
  back : Hub.t;
  edge_clock : Sim_clock.t;  (* shared by kernel-less client hosts *)
  balancer : node;
  apps : node array;
  db : node;
  users : (string * string) array;  (* user, password *)
  secrets : (string * string) list;  (* user, plaintext record *)
  served : int array;  (* per app node, host-side observability *)
  down_until : int64 array;  (* balancer-clock ns per app node *)
  mutable rotation : int;
  mutable failovers : int;
  work_us : int;
  cooldown_ns : int64;
}

let m_requests = Metrics.counter "webcluster.requests"
let m_failovers = Metrics.counter "webcluster.failovers"

(* --- addressing --- *)

let back_ip i = Printf.sprintf "10.1.0.%d" (i + 1)
let back_mac i = Printf.sprintf "bk%02d" i
let dist_port = 7000
let front_port = 80

(* Session sealing key, computable by client and balancer alike from
   the password — the stand-in for an SSL handshake. *)
let session_key ~user ~password =
  Checksum.fnv64 (Printf.sprintf "sess:%s:%s" user password)

(* --- construction --- *)

let mk_node ~cluster ~back ~key ~directory ~peers ~seed i =
  let n_clock = Sim_clock.create () in
  let n_kernel =
    Kernel.create ~seed:(Int64.add seed (Int64.of_int (1000 * (i + 1))))
      ~clock:n_clock ()
  in
  Cluster.add_kernel cluster n_kernel;
  let root = Kernel.root n_kernel in
  let n_netd =
    Netd.start n_kernel ~hub:back ~container:root
      ~ip:(Addr.ip_of_string (back_ip i))
      ~mac:(back_mac i) ()
  in
  let names = Names.create ~node_id:i ~key ~directory in
  let n_dist =
    Distd.start n_kernel ~netd:n_netd ~names ~key ~container:root
      ~port:dist_port ~peers ()
  in
  { n_id = i; n_kernel; n_clock; n_netd; n_dist }

let rec build ?(app_nodes = 2) ?(user_count = 4) ?(seed = 7L) ?(work_us = 800)
    ?(cooldown_ms = 400) () =
  let cluster = Cluster.create () in
  let edge_clock = Sim_clock.create () in
  let front_clock = Sim_clock.create () in
  let back_clock = Sim_clock.create () in
  (* A fast, quiet backbone and edge: the interesting serial resource
     in the scale benchmark must be app CPU, not wire time. *)
  let front = Hub.create ~bandwidth_bps:1e9 ~latency_us:10.0 ~clock:front_clock () in
  let back = Hub.create ~bandwidth_bps:1e9 ~latency_us:10.0 ~clock:back_clock () in
  let key = Int64.logxor 0x6469737463616673L seed in
  let directory = Names.Directory.create () in
  let peers i = Addr.v (back_ip i) dist_port in
  let node = mk_node ~cluster ~back ~key ~directory ~peers ~seed in
  let balancer = node 0 in
  let apps = Array.init app_nodes (fun i -> node (i + 1)) in
  let db = node (app_nodes + 1) in
  let rng = Rng.create (Int64.logxor seed 0x77656263L) in
  let users =
    Array.init user_count (fun i ->
        ( Printf.sprintf "user%d" i,
          Printf.sprintf "pw%d-%08Lx" i (Int64.logand (Rng.next64 rng) 0xffffffffL) ))
  in
  let secrets =
    Array.to_list
      (Array.map
         (fun (u, _) ->
           (u, Printf.sprintf "SECRET-%s-%08Lx" u
                 (Int64.logand (Rng.next64 rng) 0xffffffffL)))
         users)
  in
  let t =
    {
      cluster;
      front;
      back;
      edge_clock;
      balancer;
      apps;
      db;
      users;
      secrets;
      served = Array.make app_nodes 0;
      down_until = Array.make app_nodes 0L;
      rotation = 0;
      failovers = 0;
      work_us;
      cooldown_ns = Int64.mul (Int64.of_int cooldown_ms) 1_000_000L;
    }
  in
  setup_db t;
  Array.iteri (fun i _ -> setup_app t i) apps;
  setup_balancer t;
  t

(* --- db node: record store, auth and get services --- *)

and setup_db t =
  let d = t.db in
  let root = Kernel.root d.n_kernel in
  (* Host-side record directory; the records themselves are labeled
     kernel segments, which is what the label checks bite on. *)
  let records : (string, Category.t * Types.centry) Hashtbl.t =
    Hashtbl.create 8
  in
  ignore
    (Kernel.spawn d.n_kernel ~label:l1 ~clearance:l3 ~container:root
       ~name:"db-init"
       (fun () ->
         let cats =
           Array.map
             (fun (user, _) ->
               let c = Sys.cat_create () in
               (* Only the balancer may speak for user categories. *)
               ignore (Distd.export_owned d.n_dist ~trust:[ 0 ] c : int64);
               let secret = List.assoc user t.secrets in
               let seg =
                 Sys.segment_create ~container:root
                   ~label:(Label.of_list [ (c, Level.L3) ] Level.L1)
                   ~quota:4096L ~len:(String.length secret)
                   (Printf.sprintf "rec-%s" user)
               in
               Sys.segment_write (Types.centry root seg) secret;
               Hashtbl.replace records user (c, Types.centry root seg);
               c)
             t.users
         in
         let auth_label =
           Array.fold_left
             (fun acc c -> Label.set acc c Level.Star)
             l1 cats
         in
         Distd.register d.n_dist ~service:"auth" ~label:auth_label
           ~clearance:l3 (fun args ->
             match String.split_on_char ' ' args with
             | [ user; pass ] -> (
                 match Array.find_opt (fun (u, _) -> u = user) t.users with
                 | Some (_, pw) when pw = pass ->
                     let c, _ = Hashtbl.find records user in
                     ("ok", [ c ])
                 | Some _ | None -> ("denied", []))
             | _ -> ("denied", []));
         Distd.register d.n_dist ~service:"get" ~label:l1 ~clearance:l3
           (fun user ->
             match Hashtbl.find_opt records user with
             | None -> ("no such user", [])
             | Some (_, seg) -> (Sys.segment_read seg (), []))))

(* --- app nodes: stateless page rendering --- *)

and setup_app t i =
  let a = t.apps.(i) in
  (* One rendering CPU per node: concurrent proxies' virtual sleeps
     would overlap (sleeping threads don't contend), so without this
     token an 8-node cluster would be no faster than one node. The
     check/set pair is atomic under cooperative scheduling — nothing
     yields between them. *)
  let busy = ref false in
  let rec render () =
    if !busy then begin
      Sys.usleep ((t.work_us / 4) + 50);
      render ()
    end
    else begin
      busy := true;
      Sys.usleep t.work_us;
      busy := false
    end
  in
  Distd.register a.n_dist ~service:"page" ~label:l1 ~clearance:l3
    (fun args ->
      (* args = "user target": render [target]'s page for [user]. The
         proxy runs at the balancer's translated label {c_user ⋆} —
         the app node honors the ⋆ because the balancer is trusted —
         and the db clamps it back to taint, so the fetch below can
         only read [target = user]. *)
      t.served.(i) <- t.served.(i) + 1;
      render ();  (* modeled rendering cost, serial per node *)
      match String.split_on_char ' ' args with
      | [ user; target ] -> (
          match Distd.call a.n_dist ~node:t.db.n_id ~service:"get" target with
          | Ok (secret, _) ->
              (Printf.sprintf "<page user=%s>%s</page>" user secret, [])
          | Error (Distd.Refused m) -> ("REFUSED " ^ m, [])
          | Error (Distd.Remote m) -> ("DENIED " ^ m, [])
          | Error (Distd.Transport m) -> ("ERR db transport: " ^ m, []))
      | _ -> ("ERR bad page args", []))

(* --- balancer: front demux, login, rotation, failover --- *)

and pick_app t now =
  let n = Array.length t.apps in
  let rec scan tried =
    if tried >= n then None
    else
      let i = (t.rotation + tried) mod n in
      if Int64.compare t.down_until.(i) now <= 0 then begin
        t.rotation <- (i + 1) mod n;
        Some i
      end
      else scan (tried + 1)
  in
  scan 0

and call_page t ~user ~op =
  let args = user ^ " " ^ op in
  let attempts = (2 * Array.length t.apps) + 4 in
  let rec go n =
    if n <= 0 then "ERR no backend"
    else
      match pick_app t (Sys.clock_ns ()) with
      | None ->
          (* every node in cooldown: wait a slice of the cooldown and
             rescan — a probe will re-admit a healed node *)
          Sys.usleep 50_000;
          go (n - 1)
      | Some i -> (
          match
            Distd.call t.balancer.n_dist ~node:t.apps.(i).n_id ~service:"page"
              args
          with
          | Ok (page, _) -> page
          | Error (Distd.Transport _) ->
              t.down_until.(i) <-
                Int64.add (Sys.clock_ns ()) t.cooldown_ns;
              t.failovers <- t.failovers + 1;
              Metrics.Counter.incr m_failovers;
              go (n - 1)
          | Error (Distd.Refused m) -> "REFUSED " ^ m
          | Error (Distd.Remote m) -> "DENIED " ^ m)
  in
  go attempts

and handle_front t front_netd sock () =
  let root = Kernel.root t.balancer.n_kernel in
  let rec read_line buf =
    match String.index_opt buf '\n' with
    | Some i -> Some (String.sub buf 0 i)
    | None -> (
        match Netd.Client.recv front_netd ~return_container:root sock with
        | Some d -> read_line (buf ^ d)
        | None -> None)
  in
  (match read_line "" with
  | None -> ()
  | Some line ->
      Metrics.Counter.incr m_requests;
      let reply_sealed ~user ~password plain =
        let seal = Seal.create ~key:(session_key ~user ~password) in
        let nonce = Int64.of_int (Hashtbl.hash (user, plain)) in
        Netd.Client.send front_netd ~return_container:root sock
          (Wire.frame_raw ~nonce (Seal.seal_tagged seal ~nonce plain))
      in
      (match String.split_on_char ' ' line with
      | [ user; pass; op ] -> (
          match
            Distd.call t.balancer.n_dist ~node:t.db.n_id ~service:"auth"
              (user ^ " " ^ pass)
          with
          | Ok ("ok", grants) ->
              (* own the user's category for the rest of the request *)
              ignore
                (Distd.claim_grants t.balancer.n_dist grants
                  : Category.t list);
              let page = call_page t ~user ~op in
              reply_sealed ~user ~password:pass page
          | Ok (_, _) -> reply_sealed ~user ~password:pass "ERR auth"
          | Error e ->
              let m =
                match e with
                | Distd.Refused m -> "refused: " ^ m
                | Distd.Remote m -> "remote: " ^ m
                | Distd.Transport m -> "transport: " ^ m
              in
              reply_sealed ~user ~password:pass ("ERR auth: " ^ m))
      | _ -> ()));
  Netd.Client.close front_netd ~return_container:root sock

and setup_balancer t =
  let b = t.balancer in
  let root = Kernel.root b.n_kernel in
  let front_netd =
    Netd.start b.n_kernel ~hub:t.front ~container:root
      ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"fe00" ()
  in
  ignore
    (Kernel.spawn b.n_kernel ~label:l1 ~clearance:l3 ~container:root
       ~name:"front-demux"
       (fun () ->
         Netd.Client.listen front_netd ~return_container:root front_port;
         let n = ref 0 in
         while true do
           let sock =
             Netd.Client.accept front_netd ~return_container:root front_port
           in
           incr n;
           ignore
             (Sys.thread_create ~container:root ~label:l1 ~clearance:l3
                ~quota:262144L
                ~name:(Printf.sprintf "front-worker-%d" !n)
                (handle_front t front_netd sock)
              : Types.oid)
         done))

(* --- accessors --- *)

let cluster t = t.cluster
let front_hub t = t.front
let back_hub t = t.back
let balancer t = t.balancer.n_kernel
let db_kernel t = t.db.n_kernel
let app_kernel t i = t.apps.(i).n_kernel
let app_mac t i = back_mac t.apps.(i).n_id
let app_clock t i = t.apps.(i).n_clock
let balancer_clock t = t.balancer.n_clock
let users t = t.users
let secret_of t user = List.assoc user t.secrets
let served t = Array.copy t.served
let failovers t = t.failovers

let node_clocks t =
  (t.balancer.n_clock :: t.db.n_clock
  :: Array.to_list (Array.map (fun a -> a.n_clock) t.apps))
  @ [ t.edge_clock ]

(* --- client-side load driver --- *)

type outcome = { o_user : string; o_request : string; o_reply : string }

type slot = {
  s_host : Sim_host.t;
  mutable s_cur : (Stack.conn * int * string) option;
      (* conn, request index, reassembly buffer *)
}

let run_load t ?(concurrency = 4) requests =
  Cluster.settle t.cluster;
  let total = Array.length requests in
  let results = Array.make total None in
  let next = ref 0 in
  let completed = ref 0 in
  let slots =
    Array.init (min concurrency (max total 1)) (fun i ->
        let h =
          Sim_host.create ~hub:t.front ~clock:t.edge_clock
            ~ip:(Printf.sprintf "10.0.0.%d" (10 + i))
            ~mac:(Printf.sprintf "cl%02d" i)
            ()
        in
        Cluster.add_host t.cluster ~stack:(Sim_host.stack h)
          ~clock:t.edge_clock;
        { s_host = h; s_cur = None })
  in
  let finish idx reply =
    results.(idx) <- Some reply;
    incr completed
  in
  let pump_slot s =
    match s.s_cur with
    | None ->
        if !next < total then begin
          let idx = !next in
          incr next;
          let user, pass, op = requests.(idx) in
          let conn =
            Stack.connect (Sim_host.stack s.s_host)
              ~dst:(Addr.v "10.0.0.1" front_port)
          in
          Stack.send conn (Printf.sprintf "%s %s %s\n" user pass op);
          s.s_cur <- Some (conn, idx, "")
        end
    | Some (conn, idx, buf) -> (
        let buf = buf ^ Stack.recv conn in
        match Wire.deframe buf with
        | Some (nonce, body, _rest) ->
            let user, pass, _ = requests.(idx) in
            let seal = Seal.create ~key:(session_key ~user ~password:pass) in
            let reply =
              match Seal.unseal_tagged seal ~nonce body with
              | Some plain -> plain
              | None -> "ERR bad seal"
            in
            Stack.close conn;
            s.s_cur <- None;
            finish idx reply
        | None ->
            if Stack.state conn = Stack.Closed then begin
              s.s_cur <- None;
              finish idx
                (match Stack.error conn with
                | Some e -> "ERR transport: " ^ e
                | None -> "ERR connection closed")
            end
            else s.s_cur <- Some (conn, idx, buf))
  in
  let pump () =
    Array.iter pump_slot slots;
    !completed >= total
  in
  let finished = Cluster.drive t.cluster ~until:pump () in
  let outcomes =
    Array.mapi
      (fun i r ->
        let user, _, op = requests.(i) in
        {
          o_user = user;
          o_request = op;
          o_reply = (match r with Some s -> s | None -> "ERR incomplete");
        })
      results
  in
  (finished, outcomes)

(* Makespan across every clock in the system, relative to a baseline
   snapshot taken with [clock_snapshot]. *)
let clock_snapshot t = List.map Sim_clock.now_ns (node_clocks t)

let elapsed_since t snap =
  List.fold_left2
    (fun acc c t0 -> Int64.max acc (Int64.sub (Sim_clock.now_ns c) t0))
    0L (node_clocks t) snap
