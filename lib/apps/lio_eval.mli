(** Multi-tenant expression evaluator on the LIO floating-label layer
    — the application-level demo for [lib/lio].

    One untrusted service thread evaluates expressions for many
    mutually distrusting tenants. Each tenant gets a secrecy category;
    variables live in labeled refs at the tenant's label; every
    evaluation runs inside a {!Histar_lio.Lio.to_labeled} block at
    that label, so the kernel's clearance bound — not the evaluator —
    stops an expression from reading another tenant's state. Results
    travel to per-tenant outboxes through [with_scope] excursions
    whose gate returns launder the service's deliberate taint back to
    ⋆, leaving the thread label exactly as it started ({!clean}). *)

type expr =
  | Lit of int
  | Var of string
  | Add of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Peek of string * string
      (** [(tenant, var)]: read another tenant's variable — denied by
          the kernel inside the block; the request completes with a
          labeled error and no cross-tenant flow. *)

type t

val create : container:Histar_core.Types.oid -> string list -> t
(** Call from the (untainted) service thread: mint one category per
    tenant name, build the LIO context with one scratch level per
    tenant, and create empty outboxes. *)

val tenant_label : t -> string -> Histar_label.Label.t
val set_var : t -> tenant:string -> string -> int -> unit

val eval : t -> tenant:string -> expr -> (unit, string) result
(** Evaluate at the tenant's label and deliver the outcome to the
    tenant's outbox (a number, ["ERR denied"], or ["ERR eval"]).
    [Error "denied"] marks a kernel-refused cross-tenant read. *)

val read_out : t -> tenant:string -> string
(** The tenant's outbox contents (service-side excursion). *)

val served : t -> int
val denied : t -> int

val clean : t -> bool
(** The service thread's label equals its creation-time label — no
    residue from serving any number of tenants. *)
