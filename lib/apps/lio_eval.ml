(* Multi-tenant expression evaluator on the LIO floating-label layer.

   One service thread hosts every tenant: it mints a secrecy category
   per tenant, keeps each tenant's variables in labeled refs at
   {tcat 3, 1}, and evaluates submitted expressions inside
   [Lio.to_labeled] blocks at the owning tenant's label. The kernel's
   clearance bound does the isolation work: an expression that peeks
   at another tenant's variable dies on the read *inside* the block
   (the taint to {a 3, b 3} exceeds the block clearance {a 3, 1}) and
   comes back as a labeled error — nothing of the other tenant reaches
   the requester, and the service itself never sees the denial as
   anything but a label-determined verdict.

   Because the service owns every tenant category, it can move results
   into per-tenant outboxes by tainting itself on purpose — inside a
   [with_scope] excursion whose gate return launders the owned taint
   back to ⋆ (§3.5). Serving tenant A then tenant B from one thread
   accumulates no label residue; [clean] checks exactly that. *)

module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Lio = Histar_lio.Lio
open Histar_core.Types

type expr =
  | Lit of int
  | Var of string
  | Add of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Peek of string * string  (* another tenant's variable — must deny *)

type tenant = {
  t_name : string;
  t_cat : Category.t;
  t_label : Label.t;
  t_vars : (string, Lio.lref) Hashtbl.t;
  t_out : Lio.lref;
}

type t = {
  e_ctx : Lio.ctx;
  e_tenants : (string * tenant) list;
  e_base : Label.t;  (* service label at creation: the clean state *)
  mutable e_served : int;
  mutable e_denied : int;
}

(* Call from the service thread, untainted. *)
let create ~container names =
  let minted =
    List.map
      (fun name ->
        let c = Sys.cat_create () in
        (name, c, Label.of_list [ (c, Level.L3) ] Level.L1))
      names
  in
  let ctx =
    Lio.init ~levels:(List.map (fun (_, _, l) -> l) minted) ~container ()
  in
  let tenants =
    List.map
      (fun (t_name, t_cat, t_label) ->
        ( t_name,
          {
            t_name;
            t_cat;
            t_label;
            t_vars = Hashtbl.create 8;
            t_out = Lio.new_ref ctx ~name:(t_name ^ " outbox") t_label "";
          } ))
      minted
  in
  {
    e_ctx = ctx;
    e_tenants = tenants;
    e_base = Sys.self_label ();
    e_served = 0;
    e_denied = 0;
  }

let tenant t name =
  match List.assoc_opt name t.e_tenants with
  | Some tn -> tn
  | None -> invalid_arg ("lio_eval: unknown tenant " ^ name)

let tenant_label t name = (tenant t name).t_label

let set_var t ~tenant:name var n =
  let tn = tenant t name in
  match Hashtbl.find_opt tn.t_vars var with
  | Some r -> Lio.write_ref r (string_of_int n)
  | None ->
      Hashtbl.replace tn.t_vars var
        (Lio.new_ref t.e_ctx
           ~name:(Printf.sprintf "%s var %s" name var)
           tn.t_label (string_of_int n))

let rec ev t tn = function
  | Lit n -> n
  | Var v -> int_of_string (Lio.read_ref (Hashtbl.find tn.t_vars v))
  | Add (a, b) -> ev t tn a + ev t tn b
  | Mul (a, b) -> ev t tn a * ev t tn b
  | Div (a, b) -> ev t tn a / ev t tn b
  | Peek (other, v) ->
      (* The ref lookup is public routing data; the read is what the
         kernel refuses under the block's clearance. *)
      int_of_string (Lio.read_ref (Hashtbl.find (tenant t other).t_vars v))

let eval t ~tenant:name expr =
  let tn = tenant t name in
  let lv = Lio.to_labeled t.e_ctx tn.t_label (fun () -> ev t tn expr) in
  (* Deliver into the tenant's outbox: deliberately taint up to the
     tenant label inside a laundering scope, so the service comes back
     clean and the verdict (not the value) is all that escapes. *)
  let out, _final =
    Lio.with_scope t.e_ctx (fun () ->
        match Lio.unlabel lv with
        | v ->
            Lio.write_ref tn.t_out (string_of_int v);
            `Ok
        | exception Kernel_error _ ->
            Lio.write_ref tn.t_out "ERR denied";
            `Denied
        | exception _ ->
            Lio.write_ref tn.t_out "ERR eval";
            `Failed)
  in
  match out with
  | Ok `Ok ->
      t.e_served <- t.e_served + 1;
      Ok ()
  | Ok `Denied ->
      t.e_denied <- t.e_denied + 1;
      Error "denied"
  | Ok `Failed -> Error "eval failed"
  | Error _ -> Error "delivery failed"

let read_out t ~tenant:name =
  let tn = tenant t name in
  match Lio.with_scope t.e_ctx (fun () -> Lio.read_ref tn.t_out) with
  | Ok s, _ -> s
  | Error e, _ -> raise e

let served t = t.e_served
let denied t = t.e_denied
let clean t = Label.equal (Sys.self_label ()) t.e_base
