(** Persistent B+-tree with fixed-size [int64] keys.

    The single-level store uses three of these, exactly as in §4 of the
    paper: object ID → disk location, free extents indexed by size, and
    free extents indexed by location. Fixed-size keys "significantly
    simplify the implementation" — composite keys (for the by-size
    index) are packed into the int64.

    The tree is immutable: {!insert} and {!remove} return a new tree
    that shares all untouched nodes with the old one (path copying).
    A version of the whole map is therefore an O(1) value copy, which
    is what lets kernel states fork in O(1) and lets the crash sweep
    and conformance fuzzer branch from any point instead of replaying.
    Node constructions are counted in the [btree.node_allocs] metrics
    counter, so structural-sharing claims are assertable: forking N
    branches must allocate O(N·height of the touched paths), never
    O(N·entries).

    Keys are unique; inserting an existing key replaces its value. *)

type 'a t

val create : ?order:int -> unit -> 'a t
(** The empty tree. [order] is the maximum number of children of an
    internal node (default 16; must be at least 4). *)

val insert : 'a t -> int64 -> 'a -> 'a t
(** Path-copying insert/replace; the argument tree is unchanged. *)

val remove : 'a t -> int64 -> 'a t option
(** [Some t'] with the key removed, [None] if the key was absent. The
    argument tree is unchanged. *)

val find : 'a t -> int64 -> 'a option
val mem : 'a t -> int64 -> bool
val cardinal : 'a t -> int
val is_empty : 'a t -> bool
val min_binding : 'a t -> (int64 * 'a) option
val max_binding : 'a t -> (int64 * 'a) option

val find_geq : 'a t -> int64 -> (int64 * 'a) option
(** Smallest binding with key [>=] the argument. *)

val find_gt : 'a t -> int64 -> (int64 * 'a) option
val find_leq : 'a t -> int64 -> (int64 * 'a) option
(** Largest binding with key [<=] the argument. *)

val find_lt : 'a t -> int64 -> (int64 * 'a) option
val iter : (int64 -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> int64 -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> (int64 * 'a) list

val height : 'a t -> int
(** Tree height (1 for a single leaf); useful for balance assertions. *)

val check_invariants : 'a t -> unit
(** Raises [Failure] if a structural invariant is violated: key
    ordering, node fill factors, uniform leaf depth, cardinality. *)

val encode : Histar_util.Codec.Enc.t -> int64 t -> unit
(** On-disk format is unchanged from the historical mutable tree:
    order, size, then the bindings in key order. *)

val decode : Histar_util.Codec.Dec.t -> int64 t
