module Codec = Histar_util.Codec
module Metrics = Histar_metrics.Metrics

(* Node traffic counters. [node_allocs] counts every node construction
   — the currency of path copying. A point update allocates one path
   (height nodes); a whole-tree copy is zero allocations because the
   root is shared. The structural-sharing property tests assert on
   exactly this counter. *)
let m_touches = Metrics.counter "btree.node_touches"
let m_splits = Metrics.counter "btree.splits"
let m_merges = Metrics.counter "btree.merges"
let m_allocs = Metrics.counter "btree.node_allocs"

(* Leaves hold the bindings; internal nodes hold separator keys.
   Separator semantics: keys >= keys.(i) live in children.(i+1).
   All arrays are immutable by convention — every update copies. *)
type 'a node =
  | Leaf of { keys : int64 array; vals : 'a array }
  | Internal of { keys : int64 array; children : 'a node array }

type 'a t = { order : int; root : 'a node; size : int }

let mk_leaf keys vals =
  Metrics.Counter.incr m_allocs;
  Leaf { keys; vals }

let mk_internal keys children =
  Metrics.Counter.incr m_allocs;
  Internal { keys; children }

let create ?(order = 16) () =
  if order < 4 then invalid_arg "Bptree.create: order must be >= 4";
  { order; root = mk_leaf [||] [||]; size = 0 }

(* occupancy bounds (non-root nodes) *)
let max_entries t = t.order
let min_entries t = t.order / 2
let max_children t = t.order
let min_children t = (t.order + 1) / 2

let cardinal t = t.size
let is_empty t = t.size = 0

(* ---------- array helpers (copy-on-write) ---------- *)

let array_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let array_remove a i =
  Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let array_set a i x =
  let b = Array.copy a in
  b.(i) <- x;
  b

(* first index with a.(i) >= k *)
let lower_bound a k =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare a.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* first index with a.(i) > k *)
let upper_bound a k =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare a.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* ---------- lookups ---------- *)

let rec find_node node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && Int64.equal l.keys.(i) k then
        Some l.vals.(i)
      else None
  | Internal n -> find_node n.children.(upper_bound n.keys k) k

let find t k = find_node t.root k
let mem t k = Option.is_some (find t k)

let rec min_node = function
  | Leaf l ->
      if Array.length l.keys = 0 then None else Some (l.keys.(0), l.vals.(0))
  | Internal n -> min_node n.children.(0)

let rec max_node = function
  | Leaf l ->
      let n = Array.length l.keys in
      if n = 0 then None else Some (l.keys.(n - 1), l.vals.(n - 1))
  | Internal n -> max_node n.children.(Array.length n.children - 1)

let min_binding t = min_node t.root
let max_binding t = max_node t.root

(* Ordered queries descend to the one child that could contain the
   answer; on a miss the answer is the min (resp. max) of the adjacent
   sibling subtree, whose keys are all beyond the separator. *)

let rec geq_node node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys then Some (l.keys.(i), l.vals.(i)) else None
  | Internal n -> (
      let ci = upper_bound n.keys k in
      match geq_node n.children.(ci) k with
      | Some _ as r -> r
      | None ->
          if ci + 1 < Array.length n.children then min_node n.children.(ci + 1)
          else None)

let rec gt_node node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = upper_bound l.keys k in
      if i < Array.length l.keys then Some (l.keys.(i), l.vals.(i)) else None
  | Internal n -> (
      let ci = upper_bound n.keys k in
      match gt_node n.children.(ci) k with
      | Some _ as r -> r
      | None ->
          if ci + 1 < Array.length n.children then min_node n.children.(ci + 1)
          else None)

let rec leq_node node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = upper_bound l.keys k in
      if i > 0 then Some (l.keys.(i - 1), l.vals.(i - 1)) else None
  | Internal n -> (
      let ci = upper_bound n.keys k in
      match leq_node n.children.(ci) k with
      | Some _ as r -> r
      | None -> if ci > 0 then max_node n.children.(ci - 1) else None)

let rec lt_node node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i > 0 then Some (l.keys.(i - 1), l.vals.(i - 1)) else None
  | Internal n -> (
      let ci = lower_bound n.keys k in
      match lt_node n.children.(ci) k with
      | Some _ as r -> r
      | None -> if ci > 0 then max_node n.children.(ci - 1) else None)

let find_geq t k = geq_node t.root k
let find_gt t k = gt_node t.root k
let find_leq t k = leq_node t.root k
let find_lt t k = lt_node t.root k

(* ---------- insert (path copying) ---------- *)

(* Returns the rebuilt node, whether a new key was added, and the
   (separator, right sibling) when the node split. *)
let rec insert_node t node k v =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && Int64.equal l.keys.(i) k then
        (mk_leaf l.keys (array_set l.vals i v), false, None)
      else
        let keys = array_insert l.keys i k in
        let vals = array_insert l.vals i v in
        let n = Array.length keys in
        if n <= max_entries t then (mk_leaf keys vals, true, None)
        else begin
          Metrics.Counter.incr m_splits;
          let mid = n / 2 in
          let left = mk_leaf (Array.sub keys 0 mid) (Array.sub vals 0 mid) in
          let rkeys = Array.sub keys mid (n - mid) in
          let rvals = Array.sub vals mid (n - mid) in
          (left, true, Some (rkeys.(0), mk_leaf rkeys rvals))
        end
  | Internal nd -> (
      let ci = upper_bound nd.keys k in
      let child, added, split = insert_node t nd.children.(ci) k v in
      match split with
      | None ->
          (mk_internal nd.keys (array_set nd.children ci child), added, None)
      | Some (sep, right) ->
          let keys = array_insert nd.keys ci sep in
          let children =
            array_insert (array_set nd.children ci child) (ci + 1) right
          in
          let nc = Array.length children in
          if nc <= max_children t then (mk_internal keys children, added, None)
          else begin
            Metrics.Counter.incr m_splits;
            let mid = nc / 2 in
            let up = keys.(mid - 1) in
            let left =
              mk_internal
                (Array.sub keys 0 (mid - 1))
                (Array.sub children 0 mid)
            in
            let right =
              mk_internal
                (Array.sub keys mid (Array.length keys - mid))
                (Array.sub children mid (nc - mid))
            in
            (left, added, Some (up, right))
          end)

let insert t k v =
  let node, added, split = insert_node t t.root k v in
  let root =
    match split with
    | None -> node
    | Some (sep, right) -> mk_internal [| sep |] [| node; right |]
  in
  { t with root; size = (t.size + if added then 1 else 0) }

(* ---------- remove (path copying with rebalancing) ---------- *)

let node_underfull t = function
  | Leaf l -> Array.length l.keys < min_entries t
  | Internal n -> Array.length n.children < min_children t

(* Rebuild a parent (given as its [pkeys]/[pchildren] arrays) with
   [child] substituted at index [ci], borrowing from or merging with a
   sibling when [child] is underfull. The parent's own fill is the
   caller's problem. *)
let fix_child t pkeys pchildren ci child =
  if not (node_underfull t child) then
    mk_internal pkeys (array_set pchildren ci child)
  else
    let nleft = if ci > 0 then Some pchildren.(ci - 1) else None in
    let nright =
      if ci + 1 < Array.length pchildren then Some pchildren.(ci + 1)
      else None
    in
    let rich = function
      | Some (Leaf l) -> Array.length l.keys > min_entries t
      | Some (Internal n) -> Array.length n.children > min_children t
      | None -> false
    in
    if rich nleft then begin
      (* borrow the left sibling's last entry/child *)
      match (Option.get nleft, child) with
      | Leaf ll, Leaf cl ->
          let n = Array.length ll.keys in
          let k = ll.keys.(n - 1) and v = ll.vals.(n - 1) in
          let left =
            mk_leaf (Array.sub ll.keys 0 (n - 1)) (Array.sub ll.vals 0 (n - 1))
          in
          let child =
            mk_leaf (array_insert cl.keys 0 k) (array_insert cl.vals 0 v)
          in
          mk_internal
            (array_set pkeys (ci - 1) k)
            (array_set (array_set pchildren (ci - 1) left) ci child)
      | Internal ln, Internal cn ->
          let nc = Array.length ln.children in
          let sep = pkeys.(ci - 1) in
          let left =
            mk_internal
              (Array.sub ln.keys 0 (Array.length ln.keys - 1))
              (Array.sub ln.children 0 (nc - 1))
          in
          let child =
            mk_internal
              (array_insert cn.keys 0 sep)
              (array_insert cn.children 0 ln.children.(nc - 1))
          in
          mk_internal
            (array_set pkeys (ci - 1) ln.keys.(Array.length ln.keys - 1))
            (array_set (array_set pchildren (ci - 1) left) ci child)
      | _ -> assert false
    end
    else if rich nright then begin
      (* borrow the right sibling's first entry/child *)
      match (child, Option.get nright) with
      | Leaf cl, Leaf rl ->
          let k = rl.keys.(0) and v = rl.vals.(0) in
          let child =
            mk_leaf
              (array_insert cl.keys (Array.length cl.keys) k)
              (array_insert cl.vals (Array.length cl.vals) v)
          in
          let right =
            mk_leaf (array_remove rl.keys 0) (array_remove rl.vals 0)
          in
          mk_internal
            (array_set pkeys ci rl.keys.(1))
            (array_set (array_set pchildren ci child) (ci + 1) right)
      | Internal cn, Internal rn ->
          let sep = pkeys.(ci) in
          let child =
            mk_internal
              (array_insert cn.keys (Array.length cn.keys) sep)
              (array_insert cn.children (Array.length cn.children)
                 rn.children.(0))
          in
          let right =
            mk_internal (array_remove rn.keys 0) (array_remove rn.children 0)
          in
          mk_internal
            (array_set pkeys ci rn.keys.(0))
            (array_set (array_set pchildren ci child) (ci + 1) right)
      | _ -> assert false
    end
    else begin
      Metrics.Counter.incr m_merges;
      (* merge with a sibling (prefer left), dropping one separator *)
      let li, merged =
        match nleft with
        | Some left ->
            ( ci - 1,
              match (left, child) with
              | Leaf ll, Leaf cl ->
                  mk_leaf
                    (Array.append ll.keys cl.keys)
                    (Array.append ll.vals cl.vals)
              | Internal ln, Internal cn ->
                  mk_internal
                    (Array.concat [ ln.keys; [| pkeys.(ci - 1) |]; cn.keys ])
                    (Array.append ln.children cn.children)
              | _ -> assert false )
        | None ->
            ( ci,
              match (child, Option.get nright) with
              | Leaf cl, Leaf rl ->
                  mk_leaf
                    (Array.append cl.keys rl.keys)
                    (Array.append cl.vals rl.vals)
              | Internal cn, Internal rn ->
                  mk_internal
                    (Array.concat [ cn.keys; [| pkeys.(ci) |]; rn.keys ])
                    (Array.append cn.children rn.children)
              | _ -> assert false )
      in
      let keys = array_remove pkeys li in
      let children = array_remove (array_set pchildren li merged) (li + 1) in
      mk_internal keys children
    end

(* Returns the rebuilt (possibly root-underfull) node, or None if the
   key was absent — in which case nothing was rebuilt. *)
let rec remove_node t node k =
  Metrics.Counter.incr m_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.keys k in
      if i < Array.length l.keys && Int64.equal l.keys.(i) k then
        Some (mk_leaf (array_remove l.keys i) (array_remove l.vals i))
      else None
  | Internal nd -> (
      let ci = upper_bound nd.keys k in
      match remove_node t nd.children.(ci) k with
      | None -> None
      | Some child -> Some (fix_child t nd.keys nd.children ci child))

let remove t k =
  match remove_node t t.root k with
  | None -> None
  | Some root ->
      let root =
        match root with
        | Internal n when Array.length n.children = 1 -> n.children.(0)
        | _ -> root
      in
      Some { t with root; size = t.size - 1 }

(* ---------- traversal ---------- *)

let rec iter_node f = function
  | Leaf l -> Array.iteri (fun i k -> f k l.vals.(i)) l.keys
  | Internal n -> Array.iter (iter_node f) n.children

let iter f t = iter_node f t.root

let fold f init t =
  let acc = ref init in
  iter (fun k v -> acc := f !acc k v) t;
  !acc

let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

let rec height_node = function
  | Leaf _ -> 1
  | Internal n -> 1 + height_node n.children.(0)

let height t = height_node t.root

(* ---------- codec (format identical to the old mutable tree) ---------- *)

let encode e t =
  Codec.Enc.u32 e t.order;
  Codec.Enc.u32 e t.size;
  iter
    (fun k v ->
      Codec.Enc.i64 e k;
      Codec.Enc.i64 e v)
    t

let decode d =
  let order = Codec.Dec.u32 d in
  let size = Codec.Dec.u32 d in
  let t = ref (create ~order ()) in
  for _ = 1 to size do
    let k = Codec.Dec.i64 d in
    let v = Codec.Dec.i64 d in
    t := insert !t k v
  done;
  !t

(* ---------- invariants ---------- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let depth = ref (-1) in
  let count = ref 0 in
  (* each subtree's keys must lie in [lo, hi) *)
  let rec go node ~lo ~hi ~is_root ~d =
    let bound_check k =
      (match lo with
      | Some b when Int64.compare k b < 0 -> fail "Bptree: key below bound"
      | _ -> ());
      match hi with
      | Some b when Int64.compare k b >= 0 -> fail "Bptree: key above bound"
      | _ -> ()
    in
    match node with
    | Leaf l ->
        let n = Array.length l.keys in
        if Array.length l.vals <> n then fail "Bptree: leaf keys/vals mismatch";
        if n > max_entries t then fail "Bptree: overfull leaf (%d)" n;
        if (not is_root) && n < min_entries t then
          fail "Bptree: underfull leaf (%d < %d)" n (min_entries t);
        if !depth = -1 then depth := d
        else if !depth <> d then fail "Bptree: leaves at different depths";
        count := !count + n;
        Array.iteri
          (fun i k ->
            if i > 0 && Int64.compare l.keys.(i - 1) k >= 0 then
              fail "Bptree: leaf keys out of order";
            bound_check k)
          l.keys
    | Internal nd ->
        let nc = Array.length nd.children in
        if Array.length nd.keys <> nc - 1 then
          fail "Bptree: internal key/child count mismatch";
        if nc > max_children t then fail "Bptree: overfull internal (%d)" nc;
        if (not is_root) && nc < min_children t then
          fail "Bptree: underfull internal (%d < %d)" nc (min_children t);
        if is_root && nc < 2 then fail "Bptree: internal root with one child";
        Array.iteri
          (fun i k ->
            if i > 0 && Int64.compare nd.keys.(i - 1) k >= 0 then
              fail "Bptree: separators out of order";
            bound_check k)
          nd.keys;
        Array.iteri
          (fun i c ->
            let lo' = if i = 0 then lo else Some nd.keys.(i - 1) in
            let hi' = if i = nc - 1 then hi else Some nd.keys.(i) in
            go c ~lo:lo' ~hi:hi' ~is_root:false ~d:(d + 1))
          nd.children
  in
  go t.root ~lo:None ~hi:None ~is_root:true ~d:0;
  if !count <> t.size then fail "Bptree: size %d but %d bindings" t.size !count
