module Metrics = Histar_metrics.Metrics

(* Structural work counters for the mutating descents (find/insert/
   remove): how many nodes each operation walks, and how often the tree
   reorganises. *)
let m_node_touches = Metrics.counter "btree.node_touches"
let m_splits = Metrics.counter "btree.splits"
let m_merges = Metrics.counter "btree.merges"

type leaf = {
  mutable lkeys : int64 array;
  mutable lvals : int64 array;
  mutable next : leaf option;
}

type node = Leaf of leaf | Internal of internal
and internal = { mutable ikeys : int64 array; mutable children : node array }

type t = { order : int; mutable root : node; mutable size : int }

let max_entries t = t.order
let min_entries t = t.order / 2
let max_children t = t.order
let min_children t = (t.order + 1) / 2

let create ?(order = 16) () =
  if order < 4 then invalid_arg "Bptree.create: order must be >= 4";
  { order; root = Leaf { lkeys = [||]; lvals = [||]; next = None }; size = 0 }

let cardinal t = t.size
let is_empty t = t.size = 0

(* ----- array helpers ----- *)

let arr_insert a i x =
  let n = Array.length a in
  let b = Array.make (n + 1) x in
  Array.blit a 0 b 0 i;
  Array.blit a i b (i + 1) (n - i);
  b

let arr_remove a i =
  let n = Array.length a in
  let b = Array.make (n - 1) a.(0) in
  Array.blit a 0 b 0 i;
  Array.blit a (i + 1) b i (n - i - 1);
  b

let arr_sub = Array.sub
let arr_append = Array.append

(* Binary search: index of first element >= k, or length if none. *)
let lower_bound a k =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare a.(mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the child to descend into for key [k]: the first i with
   k < ikeys.(i), else the last child. Keys >= ikeys.(i) live in
   children.(i+1). *)
let child_index n k =
  let a = n.ikeys in
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare a.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* ----- find ----- *)

let rec find_node node k =
  Metrics.Counter.incr m_node_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys k in
      if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then
        Some l.lvals.(i)
      else None
  | Internal n -> find_node n.children.(child_index n k) k

let find t k = find_node t.root k
let mem t k = Option.is_some (find t k)

(* ----- insert ----- *)

type split = (int64 * node) option

let rec insert_node t node k v : split * bool =
  Metrics.Counter.incr m_node_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys k in
      if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then begin
        l.lvals.(i) <- v;
        (None, false)
      end
      else begin
        l.lkeys <- arr_insert l.lkeys i k;
        l.lvals <- arr_insert l.lvals i v;
        if Array.length l.lkeys > max_entries t then begin
          let n = Array.length l.lkeys in
          let mid = n / 2 in
          let right =
            {
              lkeys = arr_sub l.lkeys mid (n - mid);
              lvals = arr_sub l.lvals mid (n - mid);
              next = l.next;
            }
          in
          l.lkeys <- arr_sub l.lkeys 0 mid;
          l.lvals <- arr_sub l.lvals 0 mid;
          l.next <- Some right;
          Metrics.Counter.incr m_splits;
          (Some (right.lkeys.(0), Leaf right), true)
        end
        else (None, true)
      end
  | Internal n -> (
      let i = child_index n k in
      let split, added = insert_node t n.children.(i) k v in
      match split with
      | None -> (None, added)
      | Some (sep, right) ->
          n.ikeys <- arr_insert n.ikeys i sep;
          n.children <- arr_insert n.children (i + 1) right;
          if Array.length n.children > max_children t then begin
            let nc = Array.length n.children in
            let mid = nc / 2 in
            (* Separator promoted to the parent. *)
            let up = n.ikeys.(mid - 1) in
            let rnode =
              {
                ikeys = arr_sub n.ikeys mid (Array.length n.ikeys - mid);
                children = arr_sub n.children mid (nc - mid);
              }
            in
            n.ikeys <- arr_sub n.ikeys 0 (mid - 1);
            n.children <- arr_sub n.children 0 mid;
            Metrics.Counter.incr m_splits;
            (Some (up, Internal rnode), added)
          end
          else (None, added))

let insert t k v =
  let split, added = insert_node t t.root k v in
  (match split with
  | None -> ()
  | Some (sep, right) ->
      t.root <- Internal { ikeys = [| sep |]; children = [| t.root; right |] });
  if added then t.size <- t.size + 1

(* ----- delete ----- *)

let node_underfull t = function
  | Leaf l -> Array.length l.lkeys < min_entries t
  | Internal n -> Array.length n.children < min_children t

(* Fix up an underfull child [i] of internal node [n] by borrowing from a
   sibling or merging with one. *)
let fix_underflow t n i =
  let borrow_from_left li =
    let left = n.children.(li) and cur = n.children.(li + 1) in
    match (left, cur) with
    | Leaf l, Leaf c ->
        let j = Array.length l.lkeys - 1 in
        c.lkeys <- arr_insert c.lkeys 0 l.lkeys.(j);
        c.lvals <- arr_insert c.lvals 0 l.lvals.(j);
        l.lkeys <- arr_sub l.lkeys 0 j;
        l.lvals <- arr_sub l.lvals 0 j;
        n.ikeys.(li) <- c.lkeys.(0)
    | Internal l, Internal c ->
        let j = Array.length l.children - 1 in
        c.ikeys <- arr_insert c.ikeys 0 n.ikeys.(li);
        c.children <- arr_insert c.children 0 l.children.(j);
        n.ikeys.(li) <- l.ikeys.(j - 1);
        l.ikeys <- arr_sub l.ikeys 0 (j - 1);
        l.children <- arr_sub l.children 0 j
    | Leaf _, Internal _ | Internal _, Leaf _ -> assert false
  in
  let borrow_from_right li =
    let cur = n.children.(li) and right = n.children.(li + 1) in
    match (cur, right) with
    | Leaf c, Leaf r ->
        c.lkeys <- arr_append c.lkeys [| r.lkeys.(0) |];
        c.lvals <- arr_append c.lvals [| r.lvals.(0) |];
        r.lkeys <- arr_remove r.lkeys 0;
        r.lvals <- arr_remove r.lvals 0;
        n.ikeys.(li) <- r.lkeys.(0)
    | Internal c, Internal r ->
        c.ikeys <- arr_append c.ikeys [| n.ikeys.(li) |];
        c.children <- arr_append c.children [| r.children.(0) |];
        n.ikeys.(li) <- r.ikeys.(0);
        r.ikeys <- arr_remove r.ikeys 0;
        r.children <- arr_remove r.children 0
    | Leaf _, Internal _ | Internal _, Leaf _ -> assert false
  in
  (* Merge children [li] and [li+1] into [li]; drop separator [li]. *)
  let merge li =
    Metrics.Counter.incr m_merges;
    (match (n.children.(li), n.children.(li + 1)) with
    | Leaf l, Leaf r ->
        l.lkeys <- arr_append l.lkeys r.lkeys;
        l.lvals <- arr_append l.lvals r.lvals;
        l.next <- r.next
    | Internal l, Internal r ->
        l.ikeys <- arr_append l.ikeys (arr_append [| n.ikeys.(li) |] r.ikeys);
        l.children <- arr_append l.children r.children
    | Leaf _, Internal _ | Internal _, Leaf _ -> assert false);
    n.ikeys <- arr_remove n.ikeys li;
    n.children <- arr_remove n.children (li + 1)
  in
  let nchildren = Array.length n.children in
  let can_spare = function
    | Leaf l -> Array.length l.lkeys > min_entries t
    | Internal c -> Array.length c.children > min_children t
  in
  if i > 0 && can_spare n.children.(i - 1) then borrow_from_left (i - 1)
  else if i < nchildren - 1 && can_spare n.children.(i + 1) then
    borrow_from_right i
  else if i > 0 then merge (i - 1)
  else merge i

let rec remove_node t node k =
  Metrics.Counter.incr m_node_touches;
  match node with
  | Leaf l ->
      let i = lower_bound l.lkeys k in
      if i < Array.length l.lkeys && Int64.equal l.lkeys.(i) k then begin
        l.lkeys <- arr_remove l.lkeys i;
        l.lvals <- arr_remove l.lvals i;
        true
      end
      else false
  | Internal n ->
      let i = child_index n k in
      let removed = remove_node t n.children.(i) k in
      if removed && node_underfull t n.children.(i) then fix_underflow t n i;
      removed

let remove t k =
  let removed = remove_node t t.root k in
  if removed then begin
    t.size <- t.size - 1;
    match t.root with
    | Internal n when Array.length n.children = 1 -> t.root <- n.children.(0)
    | Internal _ | Leaf _ -> ()
  end;
  removed

(* ----- ordered queries ----- *)

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.children.(0)

let rec rightmost_leaf = function
  | Leaf l -> l
  | Internal n -> rightmost_leaf n.children.(Array.length n.children - 1)

let min_binding t =
  let l = leftmost_leaf t.root in
  if Array.length l.lkeys = 0 then None else Some (l.lkeys.(0), l.lvals.(0))

let max_binding t =
  let l = rightmost_leaf t.root in
  let n = Array.length l.lkeys in
  if n = 0 then None else Some (l.lkeys.(n - 1), l.lvals.(n - 1))

(* First binding with key >= k (strict: > k). *)
let find_bound t k ~strict =
  let rec descend = function
    | Leaf l -> l
    | Internal n -> descend n.children.(child_index n k)
  in
  let l = descend t.root in
  let match_at l i =
    let key = l.lkeys.(i) in
    let c = Int64.compare key k in
    if c > 0 || ((not strict) && c = 0) then Some (key, l.lvals.(i)) else None
  in
  let rec scan l i =
    if i < Array.length l.lkeys then
      match match_at l i with Some r -> Some r | None -> scan l (i + 1)
    else match l.next with Some next -> scan next 0 | None -> None
  in
  scan l (lower_bound l.lkeys k)

let find_geq t k = find_bound t k ~strict:false
let find_gt t k = find_bound t k ~strict:true

(* Largest binding with key <= k (strict: < k). *)
let find_low_bound t k ~strict =
  let rec max_of = function
    | Leaf l ->
        let n = Array.length l.lkeys in
        if n = 0 then None else Some (l.lkeys.(n - 1), l.lvals.(n - 1))
    | Internal n -> max_of n.children.(Array.length n.children - 1)
  in
  let ok key =
    let c = Int64.compare key k in
    c < 0 || ((not strict) && c = 0)
  in
  let rec go node =
    match node with
    | Leaf l ->
        let rec scan i best =
          if i >= Array.length l.lkeys then best
          else if ok l.lkeys.(i) then scan (i + 1) (Some (l.lkeys.(i), l.lvals.(i)))
          else best
        in
        scan 0 None
    | Internal n -> (
        let i = child_index n k in
        match go n.children.(i) with
        | Some r -> Some r
        | None -> if i > 0 then max_of n.children.(i - 1) else None)
  in
  go t.root

let find_leq t k = find_low_bound t k ~strict:false
let find_lt t k = find_low_bound t k ~strict:true

let iter f t =
  let rec go l =
    Array.iteri (fun i k -> f k l.lvals.(i)) l.lkeys;
    match l.next with Some next -> go next | None -> ()
  in
  go (leftmost_leaf t.root)

let fold f init t =
  let acc = ref init in
  iter (fun k v -> acc := f !acc k v) t;
  !acc

let to_list t = List.rev (fold (fun acc k v -> (k, v) :: acc) [] t)

let height t =
  let rec go = function Leaf _ -> 1 | Internal n -> 1 + go n.children.(0) in
  go t.root

(* ----- invariants ----- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let rec check node ~is_root ~lo ~hi =
    (* every key k in the subtree must satisfy lo <= k < hi *)
    let in_range k =
      (match lo with Some l -> Int64.compare l k <= 0 | None -> true)
      && match hi with Some h -> Int64.compare k h < 0 | None -> true
    in
    match node with
    | Leaf l ->
        let n = Array.length l.lkeys in
        if Array.length l.lvals <> n then fail "leaf keys/vals length mismatch";
        if (not is_root) && n < min_entries t then fail "leaf underfull: %d" n;
        if n > max_entries t then fail "leaf overfull: %d" n;
        for i = 0 to n - 1 do
          if not (in_range l.lkeys.(i)) then fail "leaf key out of range";
          if i > 0 && Int64.compare l.lkeys.(i - 1) l.lkeys.(i) >= 0 then
            fail "leaf keys not strictly increasing"
        done;
        1
    | Internal n ->
        let nc = Array.length n.children in
        if Array.length n.ikeys <> nc - 1 then fail "internal arity mismatch";
        if (not is_root) && nc < min_children t then fail "internal underfull";
        if is_root && nc < 2 then fail "internal root with < 2 children";
        if nc > max_children t then fail "internal overfull";
        Array.iter (fun k -> if not (in_range k) then fail "sep out of range") n.ikeys;
        for i = 0 to Array.length n.ikeys - 2 do
          if Int64.compare n.ikeys.(i) n.ikeys.(i + 1) >= 0 then
            fail "separators not increasing"
        done;
        let depths =
          Array.mapi
            (fun i child ->
              let lo' = if i = 0 then lo else Some n.ikeys.(i - 1) in
              let hi' = if i = nc - 1 then hi else Some n.ikeys.(i) in
              check child ~is_root:false ~lo:lo' ~hi:hi')
            n.children
        in
        Array.iter
          (fun d -> if d <> depths.(0) then fail "leaves at different depths")
          depths;
        1 + depths.(0)
  in
  ignore (check t.root ~is_root:true ~lo:None ~hi:None);
  (* leaf chain must visit exactly the in-order keys *)
  let count = ref 0 in
  let last = ref None in
  iter
    (fun k _ ->
      (match !last with
      | Some prev when Int64.compare prev k >= 0 ->
          fail "leaf chain out of order"
      | Some _ | None -> ());
      last := Some k;
      incr count)
    t;
  if !count <> t.size then fail "size %d but chain has %d" t.size !count

(* ----- serialization ----- *)

let encode enc t =
  let module E = Histar_util.Codec.Enc in
  E.u32 enc t.order;
  E.u32 enc t.size;
  iter
    (fun k v ->
      E.i64 enc k;
      E.i64 enc v)
    t

let decode dec =
  let module D = Histar_util.Codec.Dec in
  let order = D.u32 dec in
  let n = D.u32 dec in
  let t = create ~order () in
  for _ = 1 to n do
    let k = D.i64 dec in
    let v = D.i64 dec in
    insert t k v
  done;
  t
