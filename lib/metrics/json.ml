(* A minimal self-contained JSON codec, just enough for the benchmark
   trajectory files and the trace dump: no external dependency, byte
   strings allowed (non-ASCII and control bytes are \u00XX-escaped, so
   to_string/of_string round-trips arbitrary OCaml strings). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 || Char.code c > 0x7e ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec emit b ~indent ~level v =
  let pad n = if indent > 0 then Buffer.add_string b (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char b '\n' in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_string f)
  | Str s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List xs ->
      Buffer.add_char b '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          emit b ~indent ~level:(level + 1) x)
        xs;
      nl ();
      pad level;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
      Buffer.add_char b '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char b ',';
            nl ()
          end;
          pad (level + 1);
          escape_string b k;
          Buffer.add_string b (if indent > 0 then ": " else ":");
          emit b ~indent ~level:(level + 1) x)
        fields;
      nl ();
      pad level;
      Buffer.add_char b '}'

let to_string ?(indent = 0) v =
  let b = Buffer.create 256 in
  emit b ~indent ~level:0 v;
  Buffer.contents b

(* ---------- parsing ---------- *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let fail p msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" p.pos msg))

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | Some c' -> fail p (Printf.sprintf "expected %c, found %c" c c')
  | None -> fail p (Printf.sprintf "expected %c, found end of input" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.src && String.sub p.src p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p ("expected " ^ word)

let hex_digit p c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail p "bad hex digit in \\u escape"

let parse_string p =
  expect p '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | None -> fail p "unterminated escape"
        | Some c ->
            advance p;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if p.pos + 4 > String.length p.src then fail p "truncated \\u";
                let v =
                  (hex_digit p p.src.[p.pos] lsl 12)
                  lor (hex_digit p p.src.[p.pos + 1] lsl 8)
                  lor (hex_digit p p.src.[p.pos + 2] lsl 4)
                  lor hex_digit p p.src.[p.pos + 3]
                in
                p.pos <- p.pos + 4;
                (* Code points <= 0xFF are raw bytes (we escape bytes on
                   output); larger ones are encoded as UTF-8. *)
                if v <= 0xFF then Buffer.add_char b (Char.chr v)
                else if v <= 0x7FF then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (v lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (v lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((v lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (v land 0x3F)))
                end
            | c -> fail p (Printf.sprintf "bad escape \\%c" c));
            go ())
    | Some c ->
        advance p;
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail p ("bad number " ^ s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail p ("bad number " ^ s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> literal p "null" Null
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some '"' -> Str (parse_string p)
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        List []
      end
      else
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              items (v :: acc)
          | Some ']' ->
              advance p;
              List.rev (v :: acc)
          | _ -> fail p "expected , or ] in array"
        in
        List (items [])
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else
        let field () =
          skip_ws p;
          let k = parse_string p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields (kv :: acc)
          | Some '}' ->
              advance p;
              List.rev (kv :: acc)
          | _ -> fail p "expected , or } in object"
        in
        Obj (fields [])
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail p (Printf.sprintf "unexpected character %c" c)

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then fail p "trailing garbage after JSON value";
  v

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_str_opt = function Str s -> Some s | _ -> None

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"
