(* A zero-dependency metrics registry: monotonic counters, gauges and
   fixed-bucket latency histograms, all named and process-global so
   instrumentation points anywhere in the tree report into one place.

   Everything is gated on a single [enabled] flag, off by default: a
   disabled instrumentation point costs one load and one branch, which
   is what lets the hot paths (syscall dispatch, sector writes) stay
   instrumented permanently. The benchmark runner enables the registry,
   snapshots it around each workload, and records the deltas. *)

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* ---------- metric bodies ---------- *)

type counter = { c_name : string; mutable c_v : int }
type gauge = { g_name : string; mutable g_v : int }

type histogram = {
  h_name : string;
  bounds : int array;
      (** strictly increasing inclusive upper bounds; observations above
          the last bound land in an implicit overflow bucket *)
  counts : int array;  (** length = Array.length bounds + 1 *)
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

(* ---------- registry ---------- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add registry name m;
      m

let kind_mismatch name want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with a different kind (wanted %s)"
       name want)

let counter name =
  match register name (fun () -> Counter { c_name = name; c_v = 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_mismatch name "counter"

let gauge name =
  match register name (fun () -> Gauge { g_name = name; g_v = 0 }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_mismatch name "gauge"

(* Latency buckets in nanoseconds: sub-microsecond syscall dispatch up
   through multi-second checkpoints. *)
let default_bounds =
  [|
    250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000; 100_000; 250_000;
    500_000; 1_000_000; 2_500_000; 5_000_000; 10_000_000; 50_000_000;
    100_000_000; 500_000_000; 1_000_000_000; 10_000_000_000;
  |]

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics: empty histogram bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics: histogram bounds must be strictly increasing"
  done

let histogram ?(bounds = default_bounds) name =
  check_bounds bounds;
  match
    register name (fun () ->
        Histogram
          {
            h_name = name;
            bounds = Array.copy bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = min_int;
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_mismatch name "histogram"

(* ---------- counters ---------- *)

module Counter = struct
  type t = counter

  let incr c = if !on then c.c_v <- c.c_v + 1

  let add c n =
    if !on then
      if n < 0 then invalid_arg "Metrics.Counter.add: negative increment"
      else c.c_v <- c.c_v + n

  let value c = c.c_v
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let set g v = if !on then g.g_v <- v
  let add g n = if !on then g.g_v <- g.g_v + n
  let value g = g.g_v
  let name g = g.g_name
end

(* ---------- histograms ---------- *)

module Histogram = struct
  type t = histogram

  (* First bucket whose upper bound covers [v]; the overflow bucket is
     index [Array.length bounds]. *)
  let bucket_of_value h v =
    let lo = ref 0 and hi = ref (Array.length h.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  (* Inclusive bounds of bucket [i]: (lower, Some upper), or (lower,
     None) for the overflow bucket. *)
  let bucket_bounds h i =
    let lower = if i = 0 then min_int else h.bounds.(i - 1) + 1 in
    let upper = if i < Array.length h.bounds then Some h.bounds.(i) else None in
    (lower, upper)

  let observe h v =
    if !on then begin
      let b = bucket_of_value h v in
      h.counts.(b) <- h.counts.(b) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
    end

  let count h = h.h_count
  let sum h = h.h_sum
  let name h = h.h_name
  let bounds h = Array.copy h.bounds
  let bucket_counts h = Array.copy h.counts
  let min_value h = if h.h_count = 0 then None else Some h.h_min
  let max_value h = if h.h_count = 0 then None else Some h.h_max

  (* Quantile estimate: the value at rank ceil(q * count). The reported
     value is the containing bucket's upper bound clamped to the
     observed maximum, which keeps estimates inside the bucket that
     holds the rank and makes q -> quantile monotone. *)
  let quantile h q =
    if h.h_count = 0 then None
    else begin
      if not (q > 0.0 && q <= 1.0) then
        invalid_arg "Metrics.Histogram.quantile: q must be in (0, 1]";
      let rank =
        let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let b = ref 0 and cum = ref h.counts.(0) in
      while !cum < rank do
        incr b;
        cum := !cum + h.counts.(!b)
      done;
      let upper =
        if !b < Array.length h.bounds then h.bounds.(!b) else h.h_max
      in
      Some (if upper > h.h_max then h.h_max else upper)
    end

  let p50 h = quantile h 0.50
  let p95 h = quantile h 0.95
  let p99 h = quantile h 0.99
end

(* ---------- snapshots ---------- *)

(* Scalar view of the registry: counters and gauges by value,
   histograms flattened to _count / _sum so workload deltas can carry
   them uniformly. Sorted by name for deterministic output. *)
type snapshot = (string * int) list

let snapshot () : snapshot =
  Hashtbl.fold
    (fun name m acc ->
      match m with
      | Counter c -> (name, c.c_v) :: acc
      | Gauge g -> (name, g.g_v) :: acc
      | Histogram h ->
          (name ^ "_count", h.h_count) :: (name ^ "_sum", h.h_sum) :: acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Per-name [after - before]; names absent from [before] count from 0,
   zero deltas are dropped. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let base = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (Hashtbl.find_opt base name) ~default:0 in
      if v = v0 then None else Some (name, v - v0))
    after

let value_in (s : snapshot) name =
  Option.value (List.assoc_opt name s) ~default:0

let find name = Hashtbl.find_opt registry name

let counter_value name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c.c_v
  | Some (Gauge g) -> g.g_v
  | Some (Histogram _) | None -> 0

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_v <- 0
      | Gauge g -> g.g_v <- 0
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.h_count <- 0;
          h.h_sum <- 0;
          h.h_min <- max_int;
          h.h_max <- min_int)
    registry

let all () =
  Hashtbl.fold (fun _ m acc -> m :: acc) registry []
  |> List.sort (fun a b -> String.compare (metric_name a) (metric_name b))

(* ---------- rendering ---------- *)

let to_json () =
  let field_of = function
    | Counter c -> (c.c_name, Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c_v) ])
    | Gauge g -> (g.g_name, Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Int g.g_v) ])
    | Histogram h ->
        let q name v = (name, match v with None -> Json.Null | Some x -> Json.Int x) in
        ( h.h_name,
          Json.Obj
            [
              ("type", Json.Str "histogram");
              ("count", Json.Int h.h_count);
              ("sum", Json.Int h.h_sum);
              q "min" (Histogram.min_value h);
              q "max" (Histogram.max_value h);
              q "p50" (Histogram.p50 h);
              q "p95" (Histogram.p95 h);
              q "p99" (Histogram.p99 h);
            ] )
  in
  Json.Obj (List.map field_of (all ()))

let pp fmt () =
  List.iter
    (fun m ->
      match m with
      | Counter c -> Format.fprintf fmt "%-36s %d@." c.c_name c.c_v
      | Gauge g -> Format.fprintf fmt "%-36s %d@." g.g_name g.g_v
      | Histogram h ->
          let s = function None -> "-" | Some v -> string_of_int v in
          Format.fprintf fmt "%-36s n=%d sum=%d p50=%s p95=%s p99=%s@."
            h.h_name h.h_count h.h_sum
            (s (Histogram.p50 h))
            (s (Histogram.p95 h))
            (s (Histogram.p99 h)))
    (all ())
