(* A zero-dependency metrics registry: monotonic counters, gauges and
   fixed-bucket latency histograms, all named and process-global so
   instrumentation points anywhere in the tree report into one place.

   Everything is gated on an [enabled] flag, off by default: a disabled
   instrumentation point costs one domain-local load and one branch,
   which is what lets the hot paths (syscall dispatch, sector writes)
   stay instrumented permanently. The benchmark runner enables the
   registry, snapshots it around each workload, and records the deltas.

   Domain safety: each metric is a registered *handle*; the mutable
   cells live in per-domain shards reached through [Domain.DLS], so an
   increment never contends with (or races against) another domain.
   Reads merge the shards deterministically — sums for counter-like
   scalars and bucket counts, min-of-mins / max-of-maxes for histogram
   extremes — all commutative, so merged output is independent of how
   increments interleaved across domains. [snapshot] reads the merged
   view; [snapshot_local] reads only the calling domain's shard, which
   is what gives concurrent check cells isolated metric windows. With
   one domain the two coincide, so single-domain runs are byte-for-byte
   what the unsharded registry produced. The [enabled] flag is likewise
   domain-local (a worker toggling a metered window must not perturb
   its siblings); toggles on the main domain also set the default that
   freshly created domains inherit. *)

(* Guards registration and shard lists; never held while user code or
   a shard-cell initializer runs. *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let main_domain = Domain.self ()
let default_on = Atomic.make false

(* Per-domain override: [None] follows the global default, so a
   [set_enabled] on the main domain reaches pool workers even when they
   were spawned before the call. A non-main domain calling
   [set_enabled] pins a sticky local override — scoped windows inside
   pool tasks should use [with_enabled] instead, which restores the
   override on exit. *)
let on_key : bool option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () =
  match !(Domain.DLS.get on_key) with
  | Some b -> b
  | None -> Atomic.get default_on

let set_enabled b =
  if Domain.self () = main_domain then (
    Atomic.set default_on b;
    Domain.DLS.get on_key := None)
  else Domain.DLS.get on_key := Some b

let with_enabled b f =
  let r = Domain.DLS.get on_key in
  let saved = !r in
  r := Some b;
  Fun.protect ~finally:(fun () -> r := saved) f

(* A shard cell per (metric, domain), created on the metric's first
   touch from that domain and threaded onto the metric's cell list so
   merges and resets can reach every shard from any domain. *)
let shard_key cells fresh =
  Domain.DLS.new_key (fun () ->
      let cell = fresh () in
      Mutex.lock mu;
      cells := cell :: !cells;
      Mutex.unlock mu;
      cell)

(* ---------- metric bodies ---------- *)

type counter = {
  c_name : string;
  c_cells : int ref list ref;
  c_key : int ref Domain.DLS.key;
}

type gauge = {
  g_name : string;
  g_cells : int ref list ref;
  g_key : int ref Domain.DLS.key;
}

type hshard = {
  hs_counts : int array;  (** length = Array.length bounds + 1 *)
  mutable hs_count : int;
  mutable hs_sum : int;
  mutable hs_min : int;
  mutable hs_max : int;
}

type histogram = {
  h_name : string;
  bounds : int array;
      (** strictly increasing inclusive upper bounds; observations above
          the last bound land in an implicit overflow bucket *)
  h_cells : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let mk_scalar () =
  let cells = ref [] in
  (cells, shard_key cells (fun () -> ref 0))

let fresh_hshard nbuckets () =
  {
    hs_counts = Array.make nbuckets 0;
    hs_count = 0;
    hs_sum = 0;
    hs_min = max_int;
    hs_max = min_int;
  }

(* ---------- registry ---------- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
          let m = make () in
          Hashtbl.add registry name m;
          m)

let kind_mismatch name want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered with a different kind (wanted %s)"
       name want)

let counter name =
  match
    register name (fun () ->
        let cells, key = mk_scalar () in
        Counter { c_name = name; c_cells = cells; c_key = key })
  with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_mismatch name "counter"

let gauge name =
  match
    register name (fun () ->
        let cells, key = mk_scalar () in
        Gauge { g_name = name; g_cells = cells; g_key = key })
  with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_mismatch name "gauge"

(* Latency buckets in nanoseconds: sub-microsecond syscall dispatch up
   through multi-second checkpoints. *)
let default_bounds =
  [|
    250; 500; 1_000; 2_500; 5_000; 10_000; 25_000; 50_000; 100_000; 250_000;
    500_000; 1_000_000; 2_500_000; 5_000_000; 10_000_000; 50_000_000;
    100_000_000; 500_000_000; 1_000_000_000; 10_000_000_000;
  |]

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics: empty histogram bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics: histogram bounds must be strictly increasing"
  done

let histogram ?(bounds = default_bounds) name =
  check_bounds bounds;
  match
    register name (fun () ->
        let bounds = Array.copy bounds in
        let cells = ref [] in
        Histogram
          {
            h_name = name;
            bounds;
            h_cells = cells;
            h_key = shard_key cells (fresh_hshard (Array.length bounds + 1));
          })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_mismatch name "histogram"

(* Shard lists are cons cells replaced only under [mu]; a merge grabs
   the current list under the lock and folds outside it. Merges are
   exact whenever the incrementing domains are quiescent (the ordered
   join in lib/par delivers exactly that at every merge point). *)
let cells_of r = locked (fun () -> !r)

let sum_cells r = List.fold_left (fun acc c -> acc + !c) 0 (cells_of r)

(* ---------- counters ---------- *)

module Counter = struct
  type t = counter

  let incr c =
    if enabled () then begin
      let r = Domain.DLS.get c.c_key in
      r := !r + 1
    end

  let add c n =
    if enabled () then
      if n < 0 then invalid_arg "Metrics.Counter.add: negative increment"
      else begin
        let r = Domain.DLS.get c.c_key in
        r := !r + n
      end

  let value c = sum_cells c.c_cells
  let local_value c = !(Domain.DLS.get c.c_key)
  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let set g v = if enabled () then Domain.DLS.get g.g_key := v

  let add g n =
    if enabled () then begin
      let r = Domain.DLS.get g.g_key in
      r := !r + n
    end

  let value g = sum_cells g.g_cells
  let name g = g.g_name
end

(* ---------- histograms ---------- *)

module Histogram = struct
  type t = histogram

  (* First bucket whose upper bound covers [v]; the overflow bucket is
     index [Array.length bounds]. *)
  let bucket_of_value h v =
    let lo = ref 0 and hi = ref (Array.length h.bounds) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= h.bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  (* Inclusive bounds of bucket [i]: (lower, Some upper), or (lower,
     None) for the overflow bucket. *)
  let bucket_bounds h i =
    let lower = if i = 0 then min_int else h.bounds.(i - 1) + 1 in
    let upper = if i < Array.length h.bounds then Some h.bounds.(i) else None in
    (lower, upper)

  let observe h v =
    if enabled () then begin
      let s = Domain.DLS.get h.h_key in
      let b = bucket_of_value h v in
      s.hs_counts.(b) <- s.hs_counts.(b) + 1;
      s.hs_count <- s.hs_count + 1;
      s.hs_sum <- s.hs_sum + v;
      if v < s.hs_min then s.hs_min <- v;
      if v > s.hs_max then s.hs_max <- v
    end

  (* Deterministic shard merge: bucket-wise and total sums, min of
     mins, max of maxes — all commutative and associative, so the
     result is independent of increment interleaving. *)
  let merged h =
    let acc = fresh_hshard (Array.length h.bounds + 1) () in
    List.iter
      (fun s ->
        Array.iteri (fun i n -> acc.hs_counts.(i) <- acc.hs_counts.(i) + n) s.hs_counts;
        acc.hs_count <- acc.hs_count + s.hs_count;
        acc.hs_sum <- acc.hs_sum + s.hs_sum;
        if s.hs_min < acc.hs_min then acc.hs_min <- s.hs_min;
        if s.hs_max > acc.hs_max then acc.hs_max <- s.hs_max)
      (cells_of h.h_cells);
    acc

  let count h = (merged h).hs_count
  let sum h = (merged h).hs_sum
  let local_count h = (Domain.DLS.get h.h_key).hs_count
  let local_sum h = (Domain.DLS.get h.h_key).hs_sum
  let name h = h.h_name
  let bounds h = Array.copy h.bounds
  let bucket_counts h = Array.copy (merged h).hs_counts

  let min_value h =
    let s = merged h in
    if s.hs_count = 0 then None else Some s.hs_min

  let max_value h =
    let s = merged h in
    if s.hs_count = 0 then None else Some s.hs_max

  (* Quantile estimate: the value at rank ceil(q * count). The reported
     value is the containing bucket's upper bound clamped to the
     observed maximum, which keeps estimates inside the bucket that
     holds the rank and makes q -> quantile monotone. *)
  let quantile h q =
    let s = merged h in
    if s.hs_count = 0 then None
    else begin
      if not (q > 0.0 && q <= 1.0) then
        invalid_arg "Metrics.Histogram.quantile: q must be in (0, 1]";
      let rank =
        let r = int_of_float (ceil (q *. float_of_int s.hs_count)) in
        if r < 1 then 1 else if r > s.hs_count then s.hs_count else r
      in
      let b = ref 0 and cum = ref s.hs_counts.(0) in
      while !cum < rank do
        incr b;
        cum := !cum + s.hs_counts.(!b)
      done;
      let upper =
        if !b < Array.length h.bounds then h.bounds.(!b) else s.hs_max
      in
      Some (if upper > s.hs_max then s.hs_max else upper)
    end

  let p50 h = quantile h 0.50
  let p95 h = quantile h 0.95
  let p99 h = quantile h 0.99
end

(* ---------- snapshots ---------- *)

(* Scalar view of the registry: counters and gauges by value,
   histograms flattened to _count / _sum so workload deltas can carry
   them uniformly. Sorted by name for deterministic output. *)
type snapshot = (string * int) list

let metrics () = locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])

let snapshot_with ~cv ~gv ~hcount ~hsum () : snapshot =
  List.fold_left
    (fun acc m ->
      match m with
      | Counter c -> (c.c_name, cv c) :: acc
      | Gauge g -> (g.g_name, gv g) :: acc
      | Histogram h ->
          (h.h_name ^ "_count", hcount h) :: (h.h_name ^ "_sum", hsum h) :: acc)
    [] (metrics ())
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  snapshot_with ~cv:Counter.value ~gv:Gauge.value ~hcount:Histogram.count
    ~hsum:Histogram.sum ()

(* The calling domain's shard only: the window primitive for check
   cells running concurrently on the pool. Single-domain runs see
   exactly what [snapshot] sees. *)
let snapshot_local () =
  snapshot_with ~cv:Counter.local_value
    ~gv:(fun g -> !(Domain.DLS.get g.g_key))
    ~hcount:Histogram.local_count ~hsum:Histogram.local_sum ()

(* Per-name [after - before]; names absent from [before] count from 0,
   zero deltas are dropped. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let base = Hashtbl.create 64 in
  List.iter (fun (name, v) -> Hashtbl.replace base name v) before;
  List.filter_map
    (fun (name, v) ->
      let v0 = Option.value (Hashtbl.find_opt base name) ~default:0 in
      if v = v0 then None else Some (name, v - v0))
    after

let value_in (s : snapshot) name =
  Option.value (List.assoc_opt name s) ~default:0

let find name = locked (fun () -> Hashtbl.find_opt registry name)

let counter_value name =
  match find name with
  | Some (Counter c) -> Counter.value c
  | Some (Gauge g) -> Gauge.value g
  | Some (Histogram _) | None -> 0

(* Zero every shard of every metric. Only meaningful at quiescent
   points (no concurrent incrementers), which is where every caller
   sits: suite setup on the main domain. *)
let reset () =
  List.iter
    (fun m ->
      match m with
      | Counter c -> List.iter (fun r -> r := 0) (cells_of c.c_cells)
      | Gauge g -> List.iter (fun r -> r := 0) (cells_of g.g_cells)
      | Histogram h ->
          List.iter
            (fun s ->
              Array.fill s.hs_counts 0 (Array.length s.hs_counts) 0;
              s.hs_count <- 0;
              s.hs_sum <- 0;
              s.hs_min <- max_int;
              s.hs_max <- min_int)
            (cells_of h.h_cells))
    (metrics ())

let all () =
  metrics ()
  |> List.sort (fun a b -> String.compare (metric_name a) (metric_name b))

(* ---------- rendering ---------- *)

let to_json () =
  let field_of = function
    | Counter c ->
        (c.c_name, Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int (Counter.value c)) ])
    | Gauge g ->
        (g.g_name, Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Int (Gauge.value g)) ])
    | Histogram h ->
        let q name v = (name, match v with None -> Json.Null | Some x -> Json.Int x) in
        ( h.h_name,
          Json.Obj
            [
              ("type", Json.Str "histogram");
              ("count", Json.Int (Histogram.count h));
              ("sum", Json.Int (Histogram.sum h));
              q "min" (Histogram.min_value h);
              q "max" (Histogram.max_value h);
              q "p50" (Histogram.p50 h);
              q "p95" (Histogram.p95 h);
              q "p99" (Histogram.p99 h);
            ] )
  in
  Json.Obj (List.map field_of (all ()))

let pp fmt () =
  List.iter
    (fun m ->
      match m with
      | Counter c -> Format.fprintf fmt "%-36s %d@." c.c_name (Counter.value c)
      | Gauge g -> Format.fprintf fmt "%-36s %d@." g.g_name (Gauge.value g)
      | Histogram h ->
          let s = function None -> "-" | Some v -> string_of_int v in
          Format.fprintf fmt "%-36s n=%d sum=%d p50=%s p95=%s p99=%s@."
            h.h_name (Histogram.count h) (Histogram.sum h)
            (s (Histogram.p50 h))
            (s (Histogram.p95 h))
            (s (Histogram.p99 h)))
    (all ())
