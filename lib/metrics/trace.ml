(* A bounded structured-event trace ring. Off by default; enabled with
   HISTAR_TRACE=1 in the environment (checked once at startup) or
   programmatically. Instrumented subsystems emit (timestamp, kind,
   key/value fields) events; when the ring is full the oldest event is
   evicted, so a dump is always the most recent window. Dumps are
   JSON-lines, one event per line, for grep/jq-style inspection. *)

type event = { ts_ns : int64; kind : string; fields : (string * string) list }

let default_capacity = 4096

type ring = {
  mutable buf : event array;
  mutable cap : int;
  mutable start : int;  (** index of the oldest event *)
  mutable len : int;
  mutable evicted : int;  (** lifetime count of events pushed out *)
}

let nil_event = { ts_ns = 0L; kind = ""; fields = [] }

(* Emitters can live on any domain (cluster nodes step on the pool);
   the ring is shared, so every access section is mutex-guarded. *)
let mu = Mutex.create ()

let ring =
  {
    buf = Array.make default_capacity nil_event;
    cap = default_capacity;
    start = 0;
    len = 0;
    evicted = 0;
  }

let env_enabled =
  match Stdlib.Sys.getenv_opt "HISTAR_TRACE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let on = ref env_enabled
let enabled () = !on
let set_enabled b = on := b

let clear () =
  Mutex.lock mu;
  ring.start <- 0;
  ring.len <- 0;
  ring.evicted <- 0;
  Mutex.unlock mu

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Mutex.lock mu;
  ring.buf <- Array.make n nil_event;
  ring.cap <- n;
  ring.start <- 0;
  ring.len <- 0;
  ring.evicted <- 0;
  Mutex.unlock mu

let capacity () = ring.cap
let length () = ring.len
let evicted () = ring.evicted

let emit ?(ts_ns = 0L) kind fields =
  if !on then begin
    let e = { ts_ns; kind; fields } in
    Mutex.lock mu;
    if ring.len < ring.cap then begin
      ring.buf.((ring.start + ring.len) mod ring.cap) <- e;
      ring.len <- ring.len + 1
    end
    else begin
      (* full: overwrite the oldest slot and advance the window *)
      ring.buf.(ring.start) <- e;
      ring.start <- (ring.start + 1) mod ring.cap;
      ring.evicted <- ring.evicted + 1
    end;
    Mutex.unlock mu
  end

(* Oldest first. *)
let events () =
  Mutex.lock mu;
  let l = List.init ring.len (fun i -> ring.buf.((ring.start + i) mod ring.cap)) in
  Mutex.unlock mu;
  l

let event_to_json e =
  Json.Obj
    (("ts_ns", Json.Int (Int64.to_int e.ts_ns))
    :: ("kind", Json.Str e.kind)
    :: List.map (fun (k, v) -> (k, Json.Str v)) e.fields)

let to_jsonl () =
  let b = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (event_to_json e));
      Buffer.add_char b '\n')
    (events ());
  Buffer.contents b

let dump oc = output_string oc (to_jsonl ())
