(** Property-based checking runner.

    A property is a function ['a -> unit] that raises on failure
    (Alcotest checks, [Failure], any exception). The runner generates
    [count] inputs of growing size from a deterministic seed, and on
    failure shrinks the input through the generator's shrink tree,
    reporting the minimal counterexample together with the exact
    environment needed to replay it:

    {v
    HISTAR_CHECK_SEED=0x00C0FFEE dune runtest
    v}

    Environment knobs:
    - [HISTAR_CHECK_SEED]: override the (fixed, deterministic) default
      seed — accepts decimal or 0x-prefixed hex;
    - [HISTAR_CHECK_COUNT]: override every property's iteration count;
    - [HISTAR_CHECK_FULL=1]: exhaustive mode — multiplies property
      iteration counts by 5 and makes crash sweeps visit every crash
      point instead of a strided sample. *)

val default_seed : int64
(** Fixed seed used when [HISTAR_CHECK_SEED] is unset, so CI runs are
    reproducible by default. *)

val seed : unit -> int64
(** The seed in effect ([HISTAR_CHECK_SEED] or {!default_seed}). *)

val full_mode : unit -> bool
(** [HISTAR_CHECK_FULL=1]. *)

exception Falsified of string
(** Carries the full counterexample report. *)

val run :
  ?count:int ->
  ?max_size:int ->
  ?seed:int64 ->
  ?max_shrink_steps:int ->
  ?print:('a -> string) ->
  name:string ->
  'a Gen.t ->
  ('a -> unit) ->
  unit
(** Run the property; raises {!Falsified} with a replayable report on
    failure. Default [count] is 100 (×5 in full mode), default
    [max_size] 30. *)

val find_counterexample :
  ?count:int ->
  ?max_size:int ->
  ?seed:int64 ->
  ?max_shrink_steps:int ->
  'a Gen.t ->
  ('a -> unit) ->
  'a option
(** Like {!run} but returns the shrunk counterexample instead of
    raising — used by the engine's own tests. *)

val test_case :
  ?count:int ->
  ?max_size:int ->
  ?print:('a -> string) ->
  string ->
  'a Gen.t ->
  ('a -> unit) ->
  unit Alcotest.test_case
(** Embed a property as an Alcotest [`Quick] case. *)

val ensure : ?msg:string -> bool -> unit
(** [ensure b] raises if [b] is false — for use inside properties. *)
