module Disk = Histar_disk.Disk
module Metrics = Histar_metrics.Metrics
module Par = Histar_par.Par

(* Cells actually checked (one per crash index, either mode), so the
   bench trajectory can watch sweep throughput. *)
let m_cells = Metrics.counter "crash_sweep.cells"

type mode = [ `Fork | `Replay ]

type instance = {
  disk : Disk.t;
  run : unit -> unit;
  check : crashed:bool -> Disk.t -> unit;
  snapshot : (unit -> unit -> unit) option;
}

type t = { name : string; mk : int64 -> instance }

type report = {
  workload : string;
  total_writes : int;
  points : int;
  mode : mode;
  wall_seconds : float;
}

let mode_string = function `Fork -> "fork" | `Replay -> "replay"

let cells_per_sec r =
  if r.wall_seconds <= 0.0 then infinity
  else float_of_int r.points /. r.wall_seconds

let pp_report fmt r =
  Format.fprintf fmt "%s: %d crash points over %d media writes (%s-based)"
    r.workload r.points r.total_writes (mode_string r.mode)

let replay_filter name =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_WORKLOAD" with
  | Some w when w <> "" && w <> name -> `Skip
  | _ -> (
      match Stdlib.Sys.getenv_opt "HISTAR_CHECK_CRASH_INDEX" with
      | Some s when s <> "" -> (
          match int_of_string_opt s with
          | Some i -> `Only i
          | None ->
              invalid_arg ("HISTAR_CHECK_CRASH_INDEX: cannot parse " ^ s))
      | _ -> `All)

(* Evenly-strided sample of [n] indices from [0, total), endpoints
   included. *)
let strided ~total ~n =
  if total <= n then List.init total Fun.id
  else
    List.init n (fun i -> i * (total - 1) / (n - 1))
    |> List.sort_uniq Int.compare

(* Both cell paths raise the same replayable falsification, so a
   fork-based failure reproduces with the (replay-based) single-index
   env knobs. *)
let falsify w ~seed ~total i e =
  raise
    (Check.Falsified
       (Printf.sprintf
          "crash sweep '%s': invariant violation at crash index %d of %d \
           (seed 0x%LX)\n\
           cause: %s\n\
           replay: HISTAR_CHECK_SEED=0x%LX HISTAR_CHECK_WORKLOAD=%s \
           HISTAR_CHECK_CRASH_INDEX=%d dune runtest"
          w.name i total seed
          (match e with Failure m -> m | e -> Printexc.to_string e)
          seed w.name i))

(* Replay-based cell: fresh instance, re-run the whole workload prefix
   with a scheduled crash, reopen, check. *)
let crash_one w ~seed ~total i =
  let inst = w.mk seed in
  Disk.set_crash_after_writes inst.disk i;
  (match inst.run () with () -> () | exception Disk.Crashed -> ());
  let crashed = Disk.crashed inst.disk in
  let disk =
    if crashed then Disk.reopen_after_crash inst.disk else inst.disk
  in
  Metrics.Counter.incr m_cells;
  try inst.check ~crashed disk with e -> falsify w ~seed ~total i e

(* Fork-based cell: the state at crash index [i] was captured during
   the single clean run (an O(1) media snapshot plus the workload's own
   model capture); branch a disk off it and check. *)
let fork_one w inst ~seed ~total snaps i =
  if i < 0 || i >= Array.length snaps then
    invalid_arg
      (Printf.sprintf "crash sweep '%s': crash index %d out of [0, %d)" w.name
         i (Array.length snaps));
  let media, restore_model = snaps.(i) in
  restore_model ();
  let disk = Disk.restore media ~clock:(Histar_util.Sim_clock.create ()) in
  Metrics.Counter.incr m_cells;
  try inst.check ~crashed:true disk with e -> falsify w ~seed ~total i e

(* A clean run that captures, before every media sector write, the
   media snapshot and a model-state restore thunk. Returns the
   instance, the captures (index [i] = state a crash at write [i]
   leaves), and the total write count. The clean-run check still runs,
   exactly as in replay mode. *)
let clean_run_with_captures w ~seed =
  let inst = w.mk seed in
  let capture =
    match inst.snapshot with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf
             "crash sweep '%s': workload has no model snapshot; use replay \
              mode"
             w.name)
  in
  let snaps = ref [] in
  Disk.set_pre_write_hook inst.disk
    (Some (fun () -> snaps := (Disk.snapshot inst.disk, capture ()) :: !snaps));
  inst.run ();
  Disk.set_pre_write_hook inst.disk None;
  let total = Disk.media_writes inst.disk in
  inst.check ~crashed:false inst.disk;
  let snaps = Array.of_list (List.rev !snaps) in
  assert (Array.length snaps = total);
  (inst, snaps, total)

(* Run [f] with the current domain's metric shard switched off, so the
   redundant per-chunk clean runs of a parallel fork sweep contribute
   nothing — merged metric totals stay byte-identical to the
   single-domain sweep. *)
let metrics_quiet f = Metrics.with_enabled false f

(* Contiguous split of [arr] into at most [d] nonempty chunks. Order is
   preserved, so the lowest falsifying index always lives in the
   lowest-numbered falsifying chunk — [Par.run]'s lowest-task-index
   re-raise therefore reproduces the sequential first failure. *)
let chunks_of d arr =
  let m = Array.length arr in
  let d = max 1 (min d m) in
  List.init d (fun k -> Array.sub arr (k * m / d) (((k + 1) * m / d) - (k * m / d)))
  |> List.filter (fun c -> Array.length c > 0)
  |> Array.of_list

let sweep ?domains ?seed:seed_arg ?(max_points = 64) ?full ?mode w =
  let seed = match seed_arg with Some s -> s | None -> Check.seed () in
  let full = match full with Some f -> f | None -> Check.full_mode () in
  let t0 = Stdlib.Sys.time () in
  let finish ~total ~points ~mode =
    {
      workload = w.name;
      total_writes = total;
      points;
      mode;
      wall_seconds = Stdlib.Sys.time () -. t0;
    }
  in
  let indices ~total =
    match replay_filter w.name with
    | `Skip -> []
    | `Only i -> [ i ]
    | `All ->
        if full then List.init total Fun.id else strided ~total ~n:max_points
  in
  (* Default to fork-based when the workload can capture its model
     state; a workload without a snapshot falls back to replay. *)
  let mode =
    match mode with
    | Some m -> m
    | None -> if Option.is_some (w.mk seed).snapshot then `Fork else `Replay
  in
  match mode with
  | `Replay ->
      let inst = w.mk seed in
      inst.run ();
      let total = Disk.media_writes inst.disk in
      inst.check ~crashed:false inst.disk;
      (* Every replay cell builds its own instance, so cells fan out
         one-per-task; [Par.run] re-raises the lowest-index
         falsification, matching the sequential first failure. *)
      let indices = Array.of_list (indices ~total) in
      ignore
        (Par.run ?domains (Array.length indices) (fun i ->
             crash_one w ~seed ~total indices.(i))
          : unit array);
      finish ~total ~points:(Array.length indices) ~mode
  | `Fork ->
      let inst, snaps, total = clean_run_with_captures w ~seed in
      let indices = Array.of_list (indices ~total) in
      (* Fork cells share an instance ([restore_model] mutates it), so
         parallelism is per contiguous chunk: chunk 0 reuses the clean
         run above, every other chunk deterministically rebuilds its
         own captures — silently, metrics-wise. *)
      let d =
        if Par.in_task () then 1
        else match domains with Some d -> d | None -> Par.domains ()
      in
      let chunks = chunks_of d indices in
      ignore
        (Par.run ?domains (Array.length chunks) (fun k ->
             let inst, snaps =
               if k = 0 then (inst, snaps)
               else
                 let inst, snaps, _ =
                   metrics_quiet (fun () -> clean_run_with_captures w ~seed)
                 in
                 (inst, snaps)
             in
             Array.iter (fork_one w inst ~seed ~total snaps) chunks.(k))
          : unit array);
      finish ~total ~points:(Array.length indices) ~mode

(* One cell's *recovery* work, metered: produce the crashed media at
   [index] by the given mode, then run the workload check with the
   metrics registry enabled only around it. Both modes must yield
   byte-identical metric diffs — the fork-vs-replay equivalence the
   tests pin down. *)
let recovery_metrics w ~seed ~index ~mode =
  let check inst ~crashed disk =
    (* A domain-local window: the recovery work all happens on the
       calling domain, so [snapshot_local] meters exactly it even when
       other pool tasks are incrementing their own shards. *)
    let before = Metrics.snapshot_local () in
    Metrics.with_enabled true (fun () -> inst.check ~crashed disk);
    Metrics.diff ~before ~after:(Metrics.snapshot_local ())
  in
  match mode with
  | `Replay ->
      let inst = w.mk seed in
      Disk.set_crash_after_writes inst.disk index;
      (match inst.run () with () -> () | exception Disk.Crashed -> ());
      if not (Disk.crashed inst.disk) then
        invalid_arg
          (Printf.sprintf "crash sweep '%s': index %d never reached" w.name
             index);
      check inst ~crashed:true (Disk.reopen_after_crash inst.disk)
  | `Fork ->
      let inst, snaps, total = clean_run_with_captures w ~seed in
      if index < 0 || index >= total then
        invalid_arg
          (Printf.sprintf "crash sweep '%s': index %d out of [0, %d)" w.name
             index total);
      let media, restore_model = snaps.(index) in
      restore_model ();
      let disk = Disk.restore media ~clock:(Histar_util.Sim_clock.create ()) in
      check inst ~crashed:true disk
