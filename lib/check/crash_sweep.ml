module Disk = Histar_disk.Disk
module Metrics = Histar_metrics.Metrics

(* Cells actually checked (one per crash index, either mode), so the
   bench trajectory can watch sweep throughput. *)
let m_cells = Metrics.counter "crash_sweep.cells"

type mode = [ `Fork | `Replay ]

type instance = {
  disk : Disk.t;
  run : unit -> unit;
  check : crashed:bool -> Disk.t -> unit;
  snapshot : (unit -> unit -> unit) option;
}

type t = { name : string; mk : int64 -> instance }

type report = {
  workload : string;
  total_writes : int;
  points : int;
  mode : mode;
  wall_seconds : float;
}

let mode_string = function `Fork -> "fork" | `Replay -> "replay"

let cells_per_sec r =
  if r.wall_seconds <= 0.0 then infinity
  else float_of_int r.points /. r.wall_seconds

let pp_report fmt r =
  Format.fprintf fmt "%s: %d crash points over %d media writes (%s-based)"
    r.workload r.points r.total_writes (mode_string r.mode)

let replay_filter name =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_WORKLOAD" with
  | Some w when w <> "" && w <> name -> `Skip
  | _ -> (
      match Stdlib.Sys.getenv_opt "HISTAR_CHECK_CRASH_INDEX" with
      | Some s when s <> "" -> (
          match int_of_string_opt s with
          | Some i -> `Only i
          | None ->
              invalid_arg ("HISTAR_CHECK_CRASH_INDEX: cannot parse " ^ s))
      | _ -> `All)

(* Evenly-strided sample of [n] indices from [0, total), endpoints
   included. *)
let strided ~total ~n =
  if total <= n then List.init total Fun.id
  else
    List.init n (fun i -> i * (total - 1) / (n - 1))
    |> List.sort_uniq Int.compare

(* Both cell paths raise the same replayable falsification, so a
   fork-based failure reproduces with the (replay-based) single-index
   env knobs. *)
let falsify w ~seed ~total i e =
  raise
    (Check.Falsified
       (Printf.sprintf
          "crash sweep '%s': invariant violation at crash index %d of %d \
           (seed 0x%LX)\n\
           cause: %s\n\
           replay: HISTAR_CHECK_SEED=0x%LX HISTAR_CHECK_WORKLOAD=%s \
           HISTAR_CHECK_CRASH_INDEX=%d dune runtest"
          w.name i total seed
          (match e with Failure m -> m | e -> Printexc.to_string e)
          seed w.name i))

(* Replay-based cell: fresh instance, re-run the whole workload prefix
   with a scheduled crash, reopen, check. *)
let crash_one w ~seed ~total i =
  let inst = w.mk seed in
  Disk.set_crash_after_writes inst.disk i;
  (match inst.run () with () -> () | exception Disk.Crashed -> ());
  let crashed = Disk.crashed inst.disk in
  let disk =
    if crashed then Disk.reopen_after_crash inst.disk else inst.disk
  in
  Metrics.Counter.incr m_cells;
  try inst.check ~crashed disk with e -> falsify w ~seed ~total i e

(* Fork-based cell: the state at crash index [i] was captured during
   the single clean run (an O(1) media snapshot plus the workload's own
   model capture); branch a disk off it and check. *)
let fork_one w inst ~seed ~total snaps i =
  if i < 0 || i >= Array.length snaps then
    invalid_arg
      (Printf.sprintf "crash sweep '%s': crash index %d out of [0, %d)" w.name
         i (Array.length snaps));
  let media, restore_model = snaps.(i) in
  restore_model ();
  let disk = Disk.restore media ~clock:(Histar_util.Sim_clock.create ()) in
  Metrics.Counter.incr m_cells;
  try inst.check ~crashed:true disk with e -> falsify w ~seed ~total i e

(* A clean run that captures, before every media sector write, the
   media snapshot and a model-state restore thunk. Returns the
   instance, the captures (index [i] = state a crash at write [i]
   leaves), and the total write count. The clean-run check still runs,
   exactly as in replay mode. *)
let clean_run_with_captures w ~seed =
  let inst = w.mk seed in
  let capture =
    match inst.snapshot with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf
             "crash sweep '%s': workload has no model snapshot; use replay \
              mode"
             w.name)
  in
  let snaps = ref [] in
  Disk.set_pre_write_hook inst.disk
    (Some (fun () -> snaps := (Disk.snapshot inst.disk, capture ()) :: !snaps));
  inst.run ();
  Disk.set_pre_write_hook inst.disk None;
  let total = Disk.media_writes inst.disk in
  inst.check ~crashed:false inst.disk;
  let snaps = Array.of_list (List.rev !snaps) in
  assert (Array.length snaps = total);
  (inst, snaps, total)

let sweep ?seed:seed_arg ?(max_points = 64) ?full ?mode w =
  let seed = match seed_arg with Some s -> s | None -> Check.seed () in
  let full = match full with Some f -> f | None -> Check.full_mode () in
  let t0 = Stdlib.Sys.time () in
  let finish ~total ~points ~mode =
    {
      workload = w.name;
      total_writes = total;
      points;
      mode;
      wall_seconds = Stdlib.Sys.time () -. t0;
    }
  in
  let indices ~total =
    match replay_filter w.name with
    | `Skip -> []
    | `Only i -> [ i ]
    | `All ->
        if full then List.init total Fun.id else strided ~total ~n:max_points
  in
  (* Default to fork-based when the workload can capture its model
     state; a workload without a snapshot falls back to replay. *)
  let mode =
    match mode with
    | Some m -> m
    | None -> if Option.is_some (w.mk seed).snapshot then `Fork else `Replay
  in
  match mode with
  | `Replay ->
      let inst = w.mk seed in
      inst.run ();
      let total = Disk.media_writes inst.disk in
      inst.check ~crashed:false inst.disk;
      let indices = indices ~total in
      List.iter (crash_one w ~seed ~total) indices;
      finish ~total ~points:(List.length indices) ~mode
  | `Fork ->
      let inst, snaps, total = clean_run_with_captures w ~seed in
      let indices = indices ~total in
      List.iter (fork_one w inst ~seed ~total snaps) indices;
      finish ~total ~points:(List.length indices) ~mode

(* One cell's *recovery* work, metered: produce the crashed media at
   [index] by the given mode, then run the workload check with the
   metrics registry enabled only around it. Both modes must yield
   byte-identical metric diffs — the fork-vs-replay equivalence the
   tests pin down. *)
let recovery_metrics w ~seed ~index ~mode =
  let check inst ~crashed disk =
    let was = Metrics.enabled () in
    let before = Metrics.snapshot () in
    Metrics.set_enabled true;
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled was)
      (fun () -> inst.check ~crashed disk);
    Metrics.diff ~before ~after:(Metrics.snapshot ())
  in
  match mode with
  | `Replay ->
      let inst = w.mk seed in
      Disk.set_crash_after_writes inst.disk index;
      (match inst.run () with () -> () | exception Disk.Crashed -> ());
      if not (Disk.crashed inst.disk) then
        invalid_arg
          (Printf.sprintf "crash sweep '%s': index %d never reached" w.name
             index);
      check inst ~crashed:true (Disk.reopen_after_crash inst.disk)
  | `Fork ->
      let inst, snaps, total = clean_run_with_captures w ~seed in
      if index < 0 || index >= total then
        invalid_arg
          (Printf.sprintf "crash sweep '%s': index %d out of [0, %d)" w.name
             index total);
      let media, restore_model = snaps.(index) in
      restore_model ();
      let disk = Disk.restore media ~clock:(Histar_util.Sim_clock.create ()) in
      check inst ~crashed:true disk
