module Disk = Histar_disk.Disk

type instance = {
  disk : Disk.t;
  run : unit -> unit;
  check : crashed:bool -> Disk.t -> unit;
}

type t = { name : string; mk : int64 -> instance }

type report = { workload : string; total_writes : int; points : int }

let pp_report fmt r =
  Format.fprintf fmt "%s: %d crash points over %d media writes" r.workload
    r.points r.total_writes

let replay_filter name =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_WORKLOAD" with
  | Some w when w <> "" && w <> name -> `Skip
  | _ -> (
      match Stdlib.Sys.getenv_opt "HISTAR_CHECK_CRASH_INDEX" with
      | Some s when s <> "" -> (
          match int_of_string_opt s with
          | Some i -> `Only i
          | None ->
              invalid_arg ("HISTAR_CHECK_CRASH_INDEX: cannot parse " ^ s))
      | _ -> `All)

(* Evenly-strided sample of [n] indices from [0, total), endpoints
   included. *)
let strided ~total ~n =
  if total <= n then List.init total Fun.id
  else
    List.init n (fun i -> i * (total - 1) / (n - 1))
    |> List.sort_uniq Int.compare

let crash_one w ~seed ~total i =
  let inst = w.mk seed in
  Disk.set_crash_after_writes inst.disk i;
  (match inst.run () with () -> () | exception Disk.Crashed -> ());
  let crashed = Disk.crashed inst.disk in
  let disk =
    if crashed then Disk.reopen_after_crash inst.disk else inst.disk
  in
  try inst.check ~crashed disk
  with e ->
    raise
      (Check.Falsified
         (Printf.sprintf
            "crash sweep '%s': invariant violation at crash index %d of %d \
             (seed 0x%LX)\n\
             cause: %s\n\
             replay: HISTAR_CHECK_SEED=0x%LX HISTAR_CHECK_WORKLOAD=%s \
             HISTAR_CHECK_CRASH_INDEX=%d dune runtest"
            w.name i total seed
            (match e with Failure m -> m | e -> Printexc.to_string e)
            seed w.name i))

let sweep ?seed:seed_arg ?(max_points = 64) ?full w =
  let seed = match seed_arg with Some s -> s | None -> Check.seed () in
  let full = match full with Some f -> f | None -> Check.full_mode () in
  (* Clean run: count media writes and make sure the invariants hold
     with no crash at all. *)
  let inst = w.mk seed in
  inst.run ();
  let total = Disk.media_writes inst.disk in
  inst.check ~crashed:false inst.disk;
  let indices =
    match replay_filter w.name with
    | `Skip -> []
    | `Only i -> [ i ]
    | `All ->
        if full then List.init total Fun.id else strided ~total ~n:max_points
  in
  List.iter (crash_one w ~seed ~total) indices;
  { workload = w.name; total_writes = total; points = List.length indices }
