(** Seed-reproducible sized generators with integrated shrinking.

    A generator is a pure function from a 64-bit seed and a size bound
    to a lazy rose tree: the root is the generated value, the children
    are progressively smaller counterexample candidates. Because
    generation is pure in the seed (driven by {!Histar_util.Rng}'s
    splitmix64), any failure is replayable from the [(seed, iteration)]
    pair alone — no generator state to capture.

    Shrinking is integrated (Hedgehog-style): [map] and [bind] compose
    shrink trees automatically, so workload generators built from these
    combinators shrink for free. *)

type 'a tree = Tree of 'a * 'a tree Seq.t

val tree_root : 'a tree -> 'a

type 'a t

val run : 'a t -> seed:int64 -> size:int -> 'a tree
val generate : 'a t -> seed:int64 -> size:int -> 'a
(** The root of {!run}'s tree (no shrinking information). *)

(** {1 Monadic core} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val sized : (int -> 'a t) -> 'a t
(** Build a generator from the current size bound. *)

val resize : int -> 'a t -> 'a t
val no_shrink : 'a t -> 'a t

(** {1 Base generators} *)

val int_range : int -> int -> int t
(** [int_range lo hi] is uniform on [\[lo, hi\]]; shrinks towards [lo]. *)

val nat : int t
(** [0 .. size], shrinking towards [0]. *)

val int64 : int64 t
(** Uniform over the full 64-bit range; shrinks towards [0L]. *)

val bool : bool t
(** Shrinks towards [false]. *)

val char : char t
val byte : char t

val choose : 'a list -> 'a t
(** Uniform pick from a non-empty constant list; shrinks towards the
    head of the list. *)

val oneof : 'a t list -> 'a t
(** Pick a generator; shrinks towards generators earlier in the list. *)

val frequency : (int * 'a t) list -> 'a t

(** {1 Collections} *)

val list : 'a t -> 'a list t
(** Length in [0 .. size]; shrinks by dropping chunks of elements and by
    shrinking individual elements. *)

val list_len : int -> 'a t -> 'a list t
(** Fixed length; shrinks elements only. *)

val string : string t
(** Length in [0 .. size]; arbitrary bytes. *)

val string_of : char t -> string t
