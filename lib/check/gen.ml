module Rng = Histar_util.Rng

type 'a tree = Tree of 'a * 'a tree Seq.t

let tree_root (Tree (x, _)) = x

let rec tree_map f (Tree (x, cs)) = Tree (f x, Seq.map (tree_map f) cs)

(* Hedgehog-style monadic composition: shrink the outer value first
   (regenerating the inner tree for each candidate), then the inner. *)
let rec tree_bind (Tree (x, xs)) f =
  let (Tree (y, ys)) = f x in
  Tree (y, Seq.append (Seq.map (fun x' -> tree_bind x' f) xs) ys)

type 'a t = { run : int64 -> int -> 'a tree }

let run g ~seed ~size = g.run seed size
let generate g ~seed ~size = tree_root (g.run seed size)

let split2 seed =
  let r = Rng.create seed in
  let a = Rng.next64 r in
  let b = Rng.next64 r in
  (a, b)

let return x = { run = (fun _ _ -> Tree (x, Seq.empty)) }
let map f g = { run = (fun s n -> tree_map f (g.run s n)) }

let bind g f =
  {
    run =
      (fun seed size ->
        let s1, s2 = split2 seed in
        tree_bind (g.run s1 size) (fun a -> (f a).run s2 size));
  }

let ( let* ) = bind
let map2 f a b = bind a (fun x -> map (f x) b)
let pair a b = map2 (fun x y -> (x, y)) a b

let triple a b c =
  bind a (fun x -> map2 (fun y z -> (x, y, z)) b c)

let sized f = { run = (fun s n -> (f n).run s n) }
let resize n g = { run = (fun s _ -> g.run s n) }
let no_shrink g = { run = (fun s n -> Tree (tree_root (g.run s n), Seq.empty)) }

(* ---------- integers ---------- *)

(* Halvings of [n] down to 1: the shrink candidates [x - h] then step
   from the destination (h = x - lo) back towards [x]. *)
let rec halves n : int Seq.t =
 fun () -> if n = 0 then Seq.Nil else Seq.Cons (n, halves (n / 2))

let rec int_tree ~lo x =
  let candidates = Seq.map (fun h -> x - h) (halves (x - lo)) in
  Tree (x, Seq.map (int_tree ~lo) candidates)

let int_range lo hi =
  if lo > hi then invalid_arg "Gen.int_range: empty range";
  {
    run =
      (fun seed _ ->
        let r = Rng.create seed in
        let x = lo + Rng.int r (hi - lo + 1) in
        int_tree ~lo x);
  }

let nat = sized (fun n -> int_range 0 (max 0 n))

let rec halves64 n : int64 Seq.t =
 fun () ->
  if Int64.equal n 0L then Seq.Nil else Seq.Cons (n, halves64 (Int64.div n 2L))

let rec int64_tree x =
  let candidates = Seq.map (fun h -> Int64.sub x h) (halves64 x) in
  Tree (x, Seq.map int64_tree candidates)

let int64 =
  {
    run =
      (fun seed _ ->
        let r = Rng.create seed in
        int64_tree (Rng.next64 r));
  }

let bool = map (fun i -> i = 1) (int_range 0 1)
let char = map Char.chr (int_range 0 255)
let byte = char

let choose xs =
  if xs = [] then invalid_arg "Gen.choose: empty list";
  map (List.nth xs) (int_range 0 (List.length xs - 1))

let oneof gs =
  if gs = [] then invalid_arg "Gen.oneof: empty list";
  bind (int_range 0 (List.length gs - 1)) (List.nth gs)

let frequency wgs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 wgs in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  bind (int_range 0 (total - 1)) (fun roll ->
      let rec pick roll = function
        | [] -> assert false
        | (w, g) :: rest -> if roll < w then g else pick (roll - w) rest
      in
      pick roll wgs)

(* ---------- lists ---------- *)

(* All ways of removing [k] consecutive elements (QuickCheck's removes). *)
let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let rec drop k = function
  | _ :: rest when k > 0 -> drop (k - 1) rest
  | xs -> xs

let rec removes k xs : 'a list Seq.t =
 fun () ->
  if k > List.length xs then Seq.Nil
  else
    let kept = take k xs and rest = drop k xs in
    Seq.Cons (rest, Seq.map (fun r -> kept @ r) (removes k rest))

(* Lists of trees with exactly one element replaced by one of its
   shrink candidates. *)
let rec elementwise = function
  | [] -> Seq.empty
  | (Tree (_, cs) as t) :: rest ->
      Seq.append
        (Seq.map (fun c -> c :: rest) cs)
        (Seq.map (fun rest' -> t :: rest') (elementwise rest))

let rec forest_tree (ts : 'a tree list) : 'a list tree =
  let drops =
    Seq.concat_map (fun k -> removes k ts) (halves (List.length ts))
  in
  Tree
    ( List.map tree_root ts,
      Seq.map forest_tree (Seq.append drops (elementwise ts)) )

let gen_trees r n g size =
  let rec go n acc =
    if n = 0 then List.rev acc
    else
      let s = Rng.next64 r in
      go (n - 1) (g.run s size :: acc)
  in
  go n []

let list g =
  sized (fun size ->
      {
        run =
          (fun seed _ ->
            let r = Rng.create seed in
            let n = Rng.int r (max 1 (size + 1)) in
            forest_tree (gen_trees r n g size));
      })

let list_len n g =
  {
    run =
      (fun seed size ->
        let r = Rng.create seed in
        let ts = gen_trees r n g size in
        let rec fixed ts =
          Tree (List.map tree_root ts, Seq.map fixed (elementwise ts))
        in
        fixed ts);
  }

let string_of cg =
  map
    (fun cs ->
      let b = Bytes.create (List.length cs) in
      List.iteri (Bytes.set b) cs;
      Bytes.to_string b)
    (list cg)

let string = string_of char
