(* Differential execution of syscall traces against the real kernel
   and the pure reference model, plus the coverage-guided fuzz loop.
   See conformance.mli for the trace/slot conventions. *)

module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module T = Histar_core.Types
module Sc = Histar_core.Syscall
module Profile = Histar_core.Profile
module Label = Histar_label.Label
module Level = Histar_label.Level
module Category = Histar_label.Category
module Metrics = Histar_metrics.Metrics
module Model = Histar_model.Model
module Mlabel = Histar_model.Mlabel
module Rng = Histar_util.Rng
module Par = Histar_par.Par

type lspec = { ls_def : int; ls_ents : (int * int) list }

type op =
  | O_cat_create
  | O_self_get_label
  | O_self_get_clearance
  | O_self_set_label of lspec
  | O_self_set_clearance of lspec
  | O_get_label of int * int
  | O_get_kind of int * int
  | O_get_descrip of int * int
  | O_get_quota of int * int
  | O_set_fixed_quota of int * int
  | O_set_immutable of int * int
  | O_get_metadata of int * int
  | O_set_metadata of int * int * string
  | O_unref of int * int
  | O_quota_move of int * int * int64
  | O_container_create of int * lspec * int64 * Model.kind list
  | O_container_list of int * int
  | O_container_get_parent of int * int
  | O_container_link of int * (int * int)
  | O_segment_create of int * lspec * int64 * int
  | O_segment_read of (int * int) * int * int
  | O_segment_write of (int * int) * int * string
  | O_segment_resize of (int * int) * int
  | O_segment_get_size of int * int
  | O_segment_copy of (int * int) * int * lspec * int64
  | O_segment_cas of (int * int) * int * int64 * int64
  | O_as_create of int * lspec * int64
  | O_as_get of int * int
  | O_as_map of (int * int) * int64 * (int * int) * int * int
  | O_as_unmap of (int * int) * int64
  | O_thread_create of int * lspec * lspec * int64
  | O_gate_create of int * lspec * lspec * int64 * bool
  | O_gate_create_oneshot of int * lspec * lspec * int64 * bool
  | O_gate_call of (int * int) * lspec option * lspec option * lspec * int
  | O_taint_to_read of int * int
  | O_futex_wake of (int * int) * int * int
  | O_sync_object of int * int

type outcome =
  | Ok_unit
  | Ok_bool of bool
  | Ok_bytes of string
  | Ok_int of int64
  | Ok_quota of int64 * int64
  | Ok_kind of string
  | Ok_label of ((int * int) list * int)
  | Ok_slot of int
  | Ok_cat of int
  | Ok_entries of (int * string * string) list
  | Ok_maps of string
  | Err of string

type term =
  | T_done
  | T_gone
  | T_stuck of string
  | T_crash of string

(* ---------- printing ---------- *)

let pp_lspec sp =
  Printf.sprintf "{d=%d;[%s]}" sp.ls_def
    (String.concat ";"
       (List.map (fun (c, r) -> Printf.sprintf "(%d,%d)" c r) sp.ls_ents))

let pp_kinds ks =
  String.concat ";" (List.map Model.kind_to_string ks)

let pp_op = function
  | O_cat_create -> "O_cat_create"
  | O_self_get_label -> "O_self_get_label"
  | O_self_get_clearance -> "O_self_get_clearance"
  | O_self_set_label sp -> Printf.sprintf "O_self_set_label %s" (pp_lspec sp)
  | O_self_set_clearance sp ->
      Printf.sprintf "O_self_set_clearance %s" (pp_lspec sp)
  | O_get_label (c, o) -> Printf.sprintf "O_get_label (%d,%d)" c o
  | O_get_kind (c, o) -> Printf.sprintf "O_get_kind (%d,%d)" c o
  | O_get_descrip (c, o) -> Printf.sprintf "O_get_descrip (%d,%d)" c o
  | O_get_quota (c, o) -> Printf.sprintf "O_get_quota (%d,%d)" c o
  | O_set_fixed_quota (c, o) -> Printf.sprintf "O_set_fixed_quota (%d,%d)" c o
  | O_set_immutable (c, o) -> Printf.sprintf "O_set_immutable (%d,%d)" c o
  | O_get_metadata (c, o) -> Printf.sprintf "O_get_metadata (%d,%d)" c o
  | O_set_metadata (c, o, s) ->
      Printf.sprintf "O_set_metadata (%d,%d,%S)" c o s
  | O_unref (c, o) -> Printf.sprintf "O_unref (%d,%d)" c o
  | O_quota_move (c, t, n) -> Printf.sprintf "O_quota_move (%d,%d,%LdL)" c t n
  | O_container_create (c, sp, q, av) ->
      Printf.sprintf "O_container_create (%d,%s,%LdL,[%s])" c (pp_lspec sp) q
        (pp_kinds av)
  | O_container_list (c, o) -> Printf.sprintf "O_container_list (%d,%d)" c o
  | O_container_get_parent (c, o) ->
      Printf.sprintf "O_container_get_parent (%d,%d)" c o
  | O_container_link (d, (c, o)) ->
      Printf.sprintf "O_container_link (%d,(%d,%d))" d c o
  | O_segment_create (c, sp, q, len) ->
      Printf.sprintf "O_segment_create (%d,%s,%LdL,%d)" c (pp_lspec sp) q len
  | O_segment_read ((c, o), off, len) ->
      Printf.sprintf "O_segment_read ((%d,%d),%d,%d)" c o off len
  | O_segment_write ((c, o), off, s) ->
      Printf.sprintf "O_segment_write ((%d,%d),%d,%S)" c o off s
  | O_segment_resize ((c, o), len) ->
      Printf.sprintf "O_segment_resize ((%d,%d),%d)" c o len
  | O_segment_get_size (c, o) -> Printf.sprintf "O_segment_get_size (%d,%d)" c o
  | O_segment_copy ((c, o), d, sp, q) ->
      Printf.sprintf "O_segment_copy ((%d,%d),%d,%s,%LdL)" c o d (pp_lspec sp) q
  | O_segment_cas ((c, o), off, e, d) ->
      Printf.sprintf "O_segment_cas ((%d,%d),%d,%LdL,%LdL)" c o off e d
  | O_as_create (c, sp, q) ->
      Printf.sprintf "O_as_create (%d,%s,%LdL)" c (pp_lspec sp) q
  | O_as_get (c, o) -> Printf.sprintf "O_as_get (%d,%d)" c o
  | O_as_map ((c, o), va, (sc, so), off, np) ->
      Printf.sprintf "O_as_map ((%d,%d),%LdL,(%d,%d),%d,%d)" c o va sc so off np
  | O_as_unmap ((c, o), va) -> Printf.sprintf "O_as_unmap ((%d,%d),%LdL)" c o va
  | O_thread_create (c, sp, csp, q) ->
      Printf.sprintf "O_thread_create (%d,%s,%s,%LdL)" c (pp_lspec sp)
        (pp_lspec csp) q
  | O_gate_create (c, sp, csp, q, keep) ->
      Printf.sprintf "O_gate_create (%d,%s,%s,%LdL,%b)" c (pp_lspec sp)
        (pp_lspec csp) q keep
  | O_gate_create_oneshot (c, sp, csp, q, keep) ->
      Printf.sprintf "O_gate_create_oneshot (%d,%s,%s,%LdL,%b)" c (pp_lspec sp)
        (pp_lspec csp) q keep
  | O_gate_call ((c, o), lsp, csp, vsp, r) ->
      let opt = function None -> "None" | Some sp -> "Some " ^ pp_lspec sp in
      Printf.sprintf "O_gate_call ((%d,%d),%s,%s,%s,%d)" c o (opt lsp) (opt csp)
        (pp_lspec vsp) r
  | O_taint_to_read (c, o) -> Printf.sprintf "O_taint_to_read (%d,%d)" c o
  | O_futex_wake ((c, o), off, n) ->
      Printf.sprintf "O_futex_wake ((%d,%d),%d,%d)" c o off n
  | O_sync_object (c, o) -> Printf.sprintf "O_sync_object (%d,%d)" c o

let pp_trace ops =
  String.concat "\n"
    (List.mapi (fun i op -> Printf.sprintf "  %2d: %s" i (pp_op op)) ops)

let pp_canon (ents, d) =
  Printf.sprintf "{%s|%d}"
    (String.concat ","
       (List.map (fun (c, r) -> Printf.sprintf "%d:%d" c r) ents))
    d

let pp_outcome = function
  | Ok_unit -> "ok"
  | Ok_bool b -> Printf.sprintf "bool %b" b
  | Ok_bytes s -> Printf.sprintf "bytes %S" s
  | Ok_int n -> Printf.sprintf "int %Ld" n
  | Ok_quota (q, u) -> Printf.sprintf "quota (%Ld,%Ld)" q u
  | Ok_kind k -> Printf.sprintf "kind %s" k
  | Ok_label c -> Printf.sprintf "label %s" (pp_canon c)
  | Ok_slot s -> Printf.sprintf "slot %d" s
  | Ok_cat c -> Printf.sprintf "cat %d" c
  | Ok_entries es ->
      Printf.sprintf "entries [%s]"
        (String.concat "; "
           (List.map (fun (s, k, d) -> Printf.sprintf "(%d,%s,%S)" s k d) es))
  | Ok_maps s -> Printf.sprintf "maps [%s]" s
  | Err c -> Printf.sprintf "err:%s" c

let pp_term = function
  | T_done -> "done"
  | T_gone -> "thread-gone"
  | T_stuck c -> "stuck:" ^ c
  | T_crash m -> "CRASH:" ^ m

(* ---------- shared helpers ---------- *)

let pos_mod a n = ((a mod n) + n) mod n

let eclass : T.error -> string = function
  | T.Label_check _ -> "label"
  | T.Not_found_ _ -> "not_found"
  | T.Invalid _ -> "invalid"
  | T.Quota _ -> "quota"
  | T.Immutable _ -> "immutable"
  | T.Avoid_type _ -> "avoid_type"

let mkind_to_tkind : Model.kind -> T.kind = function
  | Model.Segment -> T.Segment
  | Model.Thread -> T.Thread
  | Model.Address_space -> T.Address_space
  | Model.Gate -> T.Gate
  | Model.Container -> T.Container
  | Model.Device -> T.Device

(* ---------- model-side execution ---------- *)

let canon_mlabel ml =
  ( List.sort compare
      (List.map (fun (c, r) -> (Int64.to_int c, r)) (Mlabel.entries ml)),
    Mlabel.default ml )

exception Stop_model of term

type model_run = {
  mr_outs : outcome list;
  mr_term : term;
  mr_st : Model.state;
  mr_slots : Model.oid list;
}

(* Model-side executor over caller-owned refs, so execution can start
   from any captured prefix state (the fork-based corpus path) as well
   as from scratch. The returned function raises [Stop_model] on a
   terminal step. *)
let mk_model_harness ~st ~slots ~ncats ~outs =
  let tid = Model.boot_thread !st in
  let record o = outs := o :: !outs in
  let nslots () = List.length !slots in
  let oid_of s = List.nth !slots (pos_mod s (nslots ())) in
  let slot_of oid =
    let rec go i = function
      | [] -> -1
      | o :: tl -> if Int64.equal o oid then i else go (i + 1) tl
    in
    go 0 !slots
  in
  let ce (c, o) : Model.centry = { container = oid_of c; object_id = oid_of o } in
  let mlab sp =
    let n = !ncats in
    List.fold_left
      (fun acc (ci, r) ->
        if n = 0 then acc else Mlabel.set acc (Int64.of_int (pos_mod ci n)) r)
      (Mlabel.make sp.ls_def) sp.ls_ents
  in
  let mstep req =
    let st', resp, status = Model.step !st ~thread:tid req in
    st := st';
    match status with
    | Model.S_continue -> resp
    | Model.S_thread_gone -> raise (Stop_model T_gone)
    | Model.S_stuck (e, _) -> raise (Stop_model (T_stuck (Model.err_to_string e)))
  in
  let out_of = function
    | Model.R_unit -> Ok_unit
    | Model.R_bool b -> Ok_bool b
    | Model.R_cat c -> Ok_cat (Int64.to_int c)
    | Model.R_label l -> Ok_label (canon_mlabel l)
    | Model.R_oid _ -> Ok_unit (* creates handled per-op *)
    | Model.R_bytes s -> Ok_bytes s
    | Model.R_int n -> Ok_int n
    | Model.R_quota (q, u) -> Ok_quota (q, u)
    | Model.R_kind k -> Ok_kind (Model.kind_to_string k)
    | Model.R_entries es ->
        Ok_entries
          (List.sort compare
             (List.map
                (fun (o, k, d) -> (slot_of o, Model.kind_to_string k, d))
                es))
    | Model.R_mappings ms ->
        Ok_maps
          (String.concat "; "
             (List.map
                (fun (m : Model.mapping) ->
                  Printf.sprintf "va=%Ld seg=(%d,%d) off=%d np=%d rwx=%b%b%b"
                    m.va
                    (slot_of m.seg.container)
                    (slot_of m.seg.object_id)
                    m.map_off m.npages m.mread m.mwrite m.mexec)
                ms))
    | Model.R_err (e, _) -> Err (Model.err_to_string e)
  in
  (* run a request that creates an object on success *)
  let creating req =
    match mstep req with
    | Model.R_oid id ->
        slots := !slots @ [ id ];
        record (Ok_slot (nslots () - 1))
    | resp -> record (out_of resp)
  in
  let spec cs sp q d : Model.spec =
    { sc_container = oid_of cs; sc_label = mlab sp; sc_quota = q; sc_descrip = d }
  in
  let do_op = function
    | O_cat_create -> (
        match mstep Model.Cat_create with
        | Model.R_cat c ->
            incr ncats;
            record (Ok_cat (Int64.to_int c))
        | resp -> record (out_of resp))
    | O_self_get_label -> record (out_of (mstep Model.Self_get_label))
    | O_self_get_clearance -> record (out_of (mstep Model.Self_get_clearance))
    | O_self_set_label sp ->
        record (out_of (mstep (Model.Self_set_label (mlab sp))))
    | O_self_set_clearance sp ->
        record (out_of (mstep (Model.Self_set_clearance (mlab sp))))
    | O_get_label (c, o) -> record (out_of (mstep (Model.Obj_get_label (ce (c, o)))))
    | O_get_kind (c, o) -> record (out_of (mstep (Model.Obj_get_kind (ce (c, o)))))
    | O_get_descrip (c, o) ->
        record (out_of (mstep (Model.Obj_get_descrip (ce (c, o)))))
    | O_get_quota (c, o) -> record (out_of (mstep (Model.Obj_get_quota (ce (c, o)))))
    | O_set_fixed_quota (c, o) ->
        record (out_of (mstep (Model.Obj_set_fixed_quota (ce (c, o)))))
    | O_set_immutable (c, o) ->
        record (out_of (mstep (Model.Obj_set_immutable (ce (c, o)))))
    | O_get_metadata (c, o) ->
        record (out_of (mstep (Model.Obj_get_metadata (ce (c, o)))))
    | O_set_metadata (c, o, s) ->
        record (out_of (mstep (Model.Obj_set_metadata (ce (c, o), s))))
    | O_unref (c, o) -> record (out_of (mstep (Model.Unref (ce (c, o)))))
    | O_quota_move (c, t, n) ->
        record
          (out_of
             (mstep
                (Model.Quota_move
                   { qm_container = oid_of c; qm_target = oid_of t; qm_nbytes = n })))
    | O_container_create (c, sp, q, av) ->
        creating (Model.Container_create (spec c sp q "con", av))
    | O_container_list (c, o) ->
        record (out_of (mstep (Model.Container_list (ce (c, o)))))
    | O_container_get_parent (c, o) -> (
        match mstep (Model.Container_get_parent (ce (c, o))) with
        | Model.R_oid p -> record (Ok_slot (slot_of p))
        | resp -> record (out_of resp))
    | O_container_link (d, tgt) ->
        record
          (out_of
             (mstep
                (Model.Container_link
                   { cl_container = oid_of d; cl_target = ce tgt })))
    | O_segment_create (c, sp, q, len) ->
        creating (Model.Segment_create (spec c sp q "seg", len))
    | O_segment_read (r, off, len) ->
        record (out_of (mstep (Model.Segment_read (ce r, off, len))))
    | O_segment_write (r, off, s) ->
        record (out_of (mstep (Model.Segment_write (ce r, off, s))))
    | O_segment_resize (r, len) ->
        record (out_of (mstep (Model.Segment_resize (ce r, len))))
    | O_segment_get_size (c, o) ->
        record (out_of (mstep (Model.Segment_get_size (ce (c, o)))))
    | O_segment_copy (src, d, sp, q) ->
        creating (Model.Segment_copy (ce src, spec d sp q "copy"))
    | O_segment_cas (r, off, e, dsr) ->
        record
          (out_of
             (mstep
                (Model.Segment_cas
                   { cas_seg = ce r; cas_off = off; cas_exp = e; cas_des = dsr })))
    | O_as_create (c, sp, q) -> creating (Model.As_create (spec c sp q "as"))
    | O_as_get (c, o) -> record (out_of (mstep (Model.As_get (ce (c, o)))))
    | O_as_map (r, va, sr, off, np) ->
        record
          (out_of
             (mstep
                (Model.As_map
                   ( ce r,
                     {
                       Model.va;
                       seg = ce sr;
                       map_off = off;
                       npages = np;
                       mread = true;
                       mwrite = true;
                       mexec = false;
                     } ))))
    | O_as_unmap (r, va) -> record (out_of (mstep (Model.As_unmap (ce r, va))))
    | O_thread_create (c, sp, csp, q) ->
        creating (Model.Thread_create (spec c sp q "thr", mlab csp))
    | O_gate_create (c, sp, csp, q, keep) ->
        creating
          (Model.Gate_create
             {
               gc_spec = spec c sp q "gate";
               gc_clearance = mlab csp;
               gc_keep = keep;
               gc_once = false;
             })
    | O_gate_create_oneshot (c, sp, csp, q, keep) ->
        creating
          (Model.Gate_create
             {
               gc_spec = spec c sp q "gate1";
               gc_clearance = mlab csp;
               gc_keep = keep;
               gc_once = true;
             })
    | O_gate_call (g, lsp, csp, vsp, r) ->
        record
          (out_of
             (mstep
                (Model.Gate_call
                   {
                     g_gate = ce g;
                     g_label = Option.map mlab lsp;
                     g_clear = Option.map mlab csp;
                     g_verify = mlab vsp;
                     g_retcon = oid_of r;
                   })))
    | O_taint_to_read (c, o) -> (
        let e = ce (c, o) in
        match mstep (Model.Obj_get_label e) with
        | Model.R_label l ->
            record (Ok_label (canon_mlabel l));
            let self = Option.get (Model.thread_label_of !st tid) in
            let l' = Mlabel.taint_to_read ~thread:self ~obj:l in
            record (out_of (mstep (Model.Self_set_label l')));
            record (out_of (mstep (Model.Segment_read (e, 0, -1))))
        | resp -> record (out_of resp))
    | O_futex_wake (r, off, n) ->
        record (out_of (mstep (Model.Futex_wake (ce r, off, n))))
    | O_sync_object (c, o) ->
        record (out_of (mstep (Model.Sync_object (ce (c, o)))))
  in
  do_op

let run_model ops =
  let st = ref (Model.init ()) in
  let slots = ref [ Model.root !st; Model.boot_thread !st ] in
  let ncats = ref 0 in
  let outs = ref [] in
  let do_op = mk_model_harness ~st ~slots ~ncats ~outs in
  let term =
    try
      List.iter do_op ops;
      T_done
    with Stop_model t -> t
  in
  { mr_outs = List.rev !outs; mr_term = term; mr_st = !st; mr_slots = !slots }

(* ---------- real-side execution ---------- *)

let canon_label cats l =
  let ents, d = Label.ranked l in
  let idx cid =
    let rec go i = function
      | [] -> -1
      | c :: tl -> if Int64.equal (Category.to_int64 c) cid then i else go (i + 1) tl
    in
    go 0 cats
  in
  (List.sort compare (List.map (fun (c, r) -> (idx c, r)) ents), d)

type real_run = {
  rr_outs : outcome list;
  rr_term : term;
  rr_k : Kernel.t;
  rr_slots : T.oid list;
  rr_cats : Category.t list;
  rr_cov : int;
}

let bucket n =
  let rec go i v = if v <= 0 then i else go (i + 1) (v lsr 1) in
  go 0 n

let out_tag = function
  | Ok_unit -> "u"
  | Ok_bool b -> if b then "b1" else "b0"
  | Ok_bytes _ -> "by"
  | Ok_int _ -> "i"
  | Ok_quota _ -> "q"
  | Ok_kind k -> "k" ^ k
  | Ok_label _ -> "l"
  | Ok_slot _ -> "s"
  | Ok_cat _ -> "c"
  | Ok_entries _ -> "e"
  | Ok_maps _ -> "m"
  | Err c -> "E" ^ c

(* The service body every trace gate runs: immediately gate-return,
   optionally granting every owned category (the §6.2 pattern). Kept
   standalone so a resumed branch can re-arm a deserialized gate with
   an entry identical to the one serialization dropped. *)
let gate_entry ~stuck keep () =
  try
    if keep then
      Sys.gate_return
        ~keep:(Category.Set.elements (Label.owned (Sys.self_label ())))
        ()
    else Sys.gate_return ()
  with T.Kernel_error e ->
    stuck := Some (eclass e);
    Sys.self_halt ()

(* Kernel-side executor over caller-owned refs (slot/category tables,
   recorded outcomes, created-gate registry for branch re-arming). The
   returned function performs syscalls, so it must run inside a kernel
   thread. *)
let mk_real_harness ~outs ~slots ~cats ~stuck ~gates =
  let record o = outs := o :: !outs in
  let nslots () = List.length !slots in
  let oid_of s = List.nth !slots (pos_mod s (nslots ())) in
  let slot_of oid =
    let rec go i = function
      | [] -> -1
      | o :: tl -> if Int64.equal o oid then i else go (i + 1) tl
    in
    go 0 !slots
  in
  let ce (c, o) = T.centry (oid_of c) (oid_of o) in
  let lab sp =
    let n = List.length !cats in
    List.fold_left
      (fun acc (ci, r) ->
        if n = 0 then acc
        else Label.set acc (List.nth !cats (pos_mod ci n)) (Level.of_rank r))
      (Label.make (Level.of_rank sp.ls_def))
      sp.ls_ents
  in
  let atomic f = try record (f ()) with T.Kernel_error e -> record (Err (eclass e)) in
  let created id =
    slots := !slots @ [ id ];
    Ok_slot (nslots () - 1)
  in
  let do_op = function
    | O_cat_create ->
        atomic (fun () ->
            let c = Sys.cat_create () in
            cats := !cats @ [ c ];
            Ok_cat (List.length !cats - 1))
    | O_self_get_label ->
        atomic (fun () -> Ok_label (canon_label !cats (Sys.self_label ())))
    | O_self_get_clearance ->
        atomic (fun () -> Ok_label (canon_label !cats (Sys.self_clearance ())))
    | O_self_set_label sp ->
        atomic (fun () ->
            Sys.self_set_label (lab sp);
            Ok_unit)
    | O_self_set_clearance sp ->
        atomic (fun () ->
            Sys.self_set_clearance (lab sp);
            Ok_unit)
    | O_get_label (c, o) ->
        atomic (fun () -> Ok_label (canon_label !cats (Sys.obj_label (ce (c, o)))))
    | O_get_kind (c, o) ->
        atomic (fun () -> Ok_kind (T.kind_to_string (Sys.obj_kind (ce (c, o)))))
    | O_get_descrip (c, o) ->
        atomic (fun () -> Ok_bytes (Sys.obj_descrip (ce (c, o))))
    | O_get_quota (c, o) ->
        atomic (fun () ->
            let q, u = Sys.obj_quota (ce (c, o)) in
            Ok_quota (q, u))
    | O_set_fixed_quota (c, o) ->
        atomic (fun () ->
            Sys.set_fixed_quota (ce (c, o));
            Ok_unit)
    | O_set_immutable (c, o) ->
        atomic (fun () ->
            Sys.set_immutable (ce (c, o));
            Ok_unit)
    | O_get_metadata (c, o) ->
        atomic (fun () -> Ok_bytes (Sys.get_metadata (ce (c, o))))
    | O_set_metadata (c, o, s) ->
        atomic (fun () ->
            Sys.set_metadata (ce (c, o)) s;
            Ok_unit)
    | O_unref (c, o) ->
        atomic (fun () ->
            Sys.unref (ce (c, o));
            Ok_unit)
    | O_quota_move (c, t, n) ->
        atomic (fun () ->
            Sys.quota_move ~container:(oid_of c) ~target:(oid_of t) ~nbytes:n;
            Ok_unit)
    | O_container_create (c, sp, q, av) ->
        atomic (fun () ->
            created
              (Sys.container_create
                 ~avoid:(List.map mkind_to_tkind av)
                 ~container:(oid_of c) ~label:(lab sp) ~quota:q "con"))
    | O_container_list (c, o) ->
        atomic (fun () ->
            Ok_entries
              (List.sort compare
                 (List.map
                    (fun (oid, kd, d) -> (slot_of oid, T.kind_to_string kd, d))
                    (Sys.container_list (ce (c, o))))))
    | O_container_get_parent (c, o) ->
        atomic (fun () -> Ok_slot (slot_of (Sys.container_parent (ce (c, o)))))
    | O_container_link (d, tgt) ->
        atomic (fun () ->
            Sys.container_link ~container:(oid_of d) ~target:(ce tgt);
            Ok_unit)
    | O_segment_create (c, sp, q, len) ->
        atomic (fun () ->
            created
              (Sys.segment_create ~container:(oid_of c) ~label:(lab sp) ~quota:q
                 ~len "seg"))
    | O_segment_read (r, off, len) ->
        atomic (fun () -> Ok_bytes (Sys.segment_read (ce r) ~off ~len ()))
    | O_segment_write (r, off, s) ->
        atomic (fun () ->
            Sys.segment_write (ce r) ~off s;
            Ok_unit)
    | O_segment_resize (r, len) ->
        atomic (fun () ->
            Sys.segment_resize (ce r) len;
            Ok_unit)
    | O_segment_get_size (c, o) ->
        atomic (fun () -> Ok_int (Int64.of_int (Sys.segment_size (ce (c, o)))))
    | O_segment_copy (src, d, sp, q) ->
        atomic (fun () ->
            created
              (Sys.segment_copy ~src:(ce src) ~container:(oid_of d)
                 ~label:(lab sp) ~quota:q "copy"))
    | O_segment_cas (r, off, e, d) ->
        atomic (fun () ->
            Ok_bool (Sys.segment_cas (ce r) ~off ~expected:e ~desired:d))
    | O_as_create (c, sp, q) ->
        atomic (fun () ->
            created
              (Sys.as_create ~container:(oid_of c) ~label:(lab sp) ~quota:q "as"))
    | O_as_get (c, o) ->
        atomic (fun () ->
            Ok_maps
              (String.concat "; "
                 (List.map
                    (fun (m : Sc.mapping) ->
                      Printf.sprintf "va=%Ld seg=(%d,%d) off=%d np=%d rwx=%b%b%b"
                        m.va
                        (slot_of m.seg.container)
                        (slot_of m.seg.object_id)
                        m.offset m.npages m.flags.read m.flags.write
                        m.flags.exec)
                    (Sys.as_get (ce (c, o))))))
    | O_as_map (r, va, sr, off, np) ->
        atomic (fun () ->
            Sys.as_map (ce r)
              {
                Sc.va;
                seg = ce sr;
                offset = off;
                npages = np;
                flags = { read = true; write = true; exec = false };
              };
            Ok_unit)
    | O_as_unmap (r, va) ->
        atomic (fun () ->
            Sys.as_unmap (ce r) va;
            Ok_unit)
    | O_thread_create (c, sp, csp, q) ->
        atomic (fun () ->
            created
              (Sys.thread_create ~container:(oid_of c) ~label:(lab sp)
                 ~clearance:(lab csp) ~quota:q ~name:"thr" (fun () -> ())))
    | O_gate_create (c, sp, csp, q, keep) ->
        atomic (fun () ->
            let g =
              Sys.gate_create ~container:(oid_of c) ~label:(lab sp)
                ~clearance:(lab csp) ~quota:q ~name:"gate"
                (gate_entry ~stuck keep)
            in
            gates := !gates @ [ (g, keep) ];
            created g)
    | O_gate_create_oneshot (c, sp, csp, q, keep) ->
        atomic (fun () ->
            let g =
              Sys.gate_create ~one_shot:true ~container:(oid_of c)
                ~label:(lab sp) ~clearance:(lab csp) ~quota:q ~name:"gate1"
                (gate_entry ~stuck keep)
            in
            gates := !gates @ [ (g, keep) ];
            created g)
    | O_gate_call (g, lsp, csp, vsp, r) ->
        atomic (fun () ->
            let gate = ce g in
            let label =
              match lsp with Some sp -> lab sp | None -> Sys.gate_floor gate
            in
            let clearance =
              match csp with Some sp -> lab sp | None -> Sys.self_clearance ()
            in
            Sys.gate_call ~gate ~label ~clearance ~verify:(lab vsp)
              ~return_container:(oid_of r)
              ~return_label:(Sys.self_label ())
              ~return_clearance:(Sys.self_clearance ()) ();
            Ok_unit)
    | O_taint_to_read (c, o) -> (
        let e = ce (c, o) in
        match (try Ok (Sys.obj_label e) with T.Kernel_error er -> Error er) with
        | Error er -> record (Err (eclass er))
        | Ok l ->
            record (Ok_label (canon_label !cats l));
            let l' = Label.taint_to_read ~thread:(Sys.self_label ()) ~obj:l in
            atomic (fun () ->
                Sys.self_set_label l';
                Ok_unit);
            atomic (fun () -> Ok_bytes (Sys.segment_read e ())))
    | O_futex_wake (r, off, n) ->
        atomic (fun () -> Ok_int (Int64.of_int (Sys.futex_wake (ce r) ~off ~count:n)))
    | O_sync_object (c, o) ->
        atomic (fun () ->
            Sys.sync_object (ce (c, o));
            Ok_unit)
  in
  do_op

(* Metrics window around one scheduler run; the delta is what the
   coverage signature buckets. *)
let metered f =
  (* Domain-local window: a scheduler run never leaves its domain, so
     concurrent fuzz cells on other pool domains can't bleed into the
     delta. *)
  Metrics.with_enabled true (fun () ->
      let before = Metrics.snapshot_local () in
      f ();
      Metrics.diff ~before ~after:(Metrics.snapshot_local ()))

(* Sum metric deltas: every snapshot scalar (counters, histogram
   _count/_sum flattenings) is additive, so per-op windows sum to the
   single-window delta of an uninterrupted run. *)
let add_mdiff a b =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) a;
  List.iter
    (fun (n, v) ->
      Hashtbl.replace tbl n
        (v + Option.value (Hashtbl.find_opt tbl n) ~default:0))
    b;
  Hashtbl.fold (fun n v acc -> if v = 0 then acc else (n, v) :: acc) tbl []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let bucketed l = List.map (fun (s, n) -> (s, bucket n)) l

(* Label-check elision moves counts from [label.checks] to
   [label.elided] (and adds [label.summary_invalidations]) without
   changing any decision. Coverage signatures fold the split back
   together and drop the invalidation counter, so corpus evolution —
   and hence whole fuzz reports — are bit-identical with elision on
   and off. *)
let normalize_mdiff l =
  let elided = ref 0 in
  let keep =
    List.filter
      (fun (n, v) ->
        match n with
        | "label.elided" ->
            elided := v;
            false
        | "label.summary_invalidations" -> false
        | _ -> true)
      l
  in
  if !elided = 0 then keep
  else
    let merged = ref false in
    let l' =
      List.map
        (fun (n, v) ->
          if String.equal n "label.checks" then begin
            merged := true;
            (n, v + !elided)
          end
          else (n, v))
        keep
    in
    if !merged then l'
    else
      List.sort
        (fun (x, _) (y, _) -> String.compare x y)
        (("label.checks", !elided) :: l')

let cov_of ~k ~mdiff ~outs ~term =
  Hashtbl.hash
    ( bucketed (Profile.to_list (Kernel.profile k)),
      bucketed (normalize_mdiff mdiff),
      List.map out_tag outs,
      pp_term term )

let run_real ?weaken ?elide ops =
  let k = Kernel.create ?weaken ?elide () in
  let outs = ref [] in
  let slots = ref [ Kernel.root k ] in
  let cats : Category.t list ref = ref [] in
  let stuck = ref None in
  let gates = ref [] in
  let crash = ref None in
  let completed = ref false in
  let do_op = mk_real_harness ~outs ~slots ~cats ~stuck ~gates in
  let driver () =
    (try List.iter do_op ops with
    | T.Kernel_error e -> outs := Err (eclass e) :: !outs
    | e -> crash := Some (Printexc.to_string e));
    completed := true
  in
  let tid = Kernel.spawn k ~name:"driver" driver in
  slots := !slots @ [ tid ];
  let mdiff =
    metered (fun () ->
        try Kernel.run k
        with e -> crash := Some ("kernel: " ^ Printexc.to_string e))
  in
  let term =
    match !crash with
    | Some m -> T_crash m
    | None -> (
        if !completed then T_done
        else
          match !stuck with
          | Some c -> T_stuck c
          | None -> (
              match Kernel.thread_state k tid with
              | None -> T_gone
              | Some _ -> T_crash "driver wedged"))
  in
  let outs = List.rev !outs in
  {
    rr_outs = outs;
    rr_term = term;
    rr_k = k;
    rr_slots = !slots;
    rr_cats = !cats;
    rr_cov = cov_of ~k ~mdiff ~outs ~term;
  }

let exec_model ops =
  let m = run_model ops in
  (m.mr_outs, m.mr_term)

let exec_real ?weaken ?elide ops =
  let r = run_real ?weaken ?elide ops in
  (r.rr_outs, r.rr_term)

(* ---------- final-state comparison ---------- *)

let model_view_str st slot_of oid =
  match Model.view st oid with
  | None -> "dead"
  | Some v ->
      let lbl l = pp_canon (canon_mlabel l) in
      Printf.sprintf
        "kind=%s label=%s q=%Ld u=%Ld fixed=%b immut=%b refs=%d meta=%S \
         descrip=%S seg=%s children=%s parent=%s clear=%s maps=%s"
        (Model.kind_to_string v.v_kind)
        (lbl v.v_label) v.v_quota v.v_usage v.v_fixed v.v_immut v.v_refs
        v.v_meta v.v_descrip
        (match v.v_seg with None -> "-" | Some s -> String.escaped s)
        (match v.v_children with
        | None -> "-"
        | Some cs ->
            String.concat ";"
              (List.sort compare
                 (List.map
                    (fun (o, k, d) ->
                      Printf.sprintf "(%d,%s,%S)" (slot_of o)
                        (Model.kind_to_string k) d)
                    cs)))
        (match v.v_parent with None -> "-" | Some p -> string_of_int (slot_of p))
        (match v.v_clear with None -> "-" | Some c -> lbl c)
        (match v.v_maps with
        | None -> "-"
        | Some ms ->
            String.concat ";"
              (List.map
                 (fun (m : Model.mapping) ->
                   Printf.sprintf "va=%Ld seg=(%d,%d) off=%d np=%d rwx=%b%b%b"
                     m.va
                     (slot_of m.seg.container)
                     (slot_of m.seg.object_id)
                     m.map_off m.npages m.mread m.mwrite m.mexec)
                 ms))

let real_view_str k cats slot_of oid =
  match Kernel.obj_kind k oid with
  | None -> "dead"
  | Some kd ->
      let lbl l = pp_canon (canon_label cats l) in
      let q, u = Option.value (Kernel.obj_quota k oid) ~default:(0L, 0L) in
      let fixed, immut = Option.value (Kernel.obj_flags k oid) ~default:(false, false) in
      Printf.sprintf
        "kind=%s label=%s q=%Ld u=%Ld fixed=%b immut=%b refs=%d meta=%S \
         descrip=%S seg=%s children=%s parent=%s clear=%s maps=%s"
        (T.kind_to_string kd)
        (lbl (Option.get (Kernel.obj_label k oid)))
        q u fixed immut
        (Option.value (Kernel.obj_refs k oid) ~default:0)
        (Option.value (Kernel.obj_metadata k oid) ~default:"")
        (Option.value (Kernel.obj_descrip k oid) ~default:"")
        (match Kernel.segment_data k oid with
        | None -> "-"
        | Some s -> String.escaped s)
        (match Kernel.container_children k oid with
        | None -> "-"
        | Some cs ->
            String.concat ";"
              (List.sort compare
                 (List.map
                    (fun (o, knd) ->
                      Printf.sprintf "(%d,%s,%S)" (slot_of o)
                        (T.kind_to_string knd)
                        (Option.value (Kernel.obj_descrip k o) ~default:"?"))
                    cs)))
        (match Kernel.container_parent_of k oid with
        | None -> "-"
        | Some p -> string_of_int (slot_of p))
        (match Kernel.thread_clearance k oid with None -> "-" | Some c -> lbl c)
        (match Kernel.as_mappings k oid with
        | None -> "-"
        | Some ms ->
            String.concat ";"
              (List.map
                 (fun (m : Sc.mapping) ->
                   Printf.sprintf "va=%Ld seg=(%d,%d) off=%d np=%d rwx=%b%b%b"
                     m.va
                     (slot_of m.seg.container)
                     (slot_of m.seg.object_id)
                     m.offset m.npages m.flags.read m.flags.write m.flags.exec)
                 ms))

let compare_runs (m : model_run) (r : real_run) =
  let rec outcomes i mo ro =
    match (mo, ro) with
    | [], [] -> None
    | m1 :: _, r1 :: _ when m1 <> r1 ->
        Some
          (Printf.sprintf "outcome %d: model=%s kernel=%s" i (pp_outcome m1)
             (pp_outcome r1))
    | _ :: mt, _ :: rt -> outcomes (i + 1) mt rt
    | m1 :: _, [] ->
        Some (Printf.sprintf "outcome %d: model=%s kernel=<none>" i (pp_outcome m1))
    | [], r1 :: _ ->
        Some (Printf.sprintf "outcome %d: model=<none> kernel=%s" i (pp_outcome r1))
  in
  match outcomes 0 m.mr_outs r.rr_outs with
  | Some d -> Some d
  | None ->
      if m.mr_term <> r.rr_term then
        Some
          (Printf.sprintf "termination: model=%s kernel=%s" (pp_term m.mr_term)
             (pp_term r.rr_term))
      else if List.length m.mr_slots <> List.length r.rr_slots then
        Some
          (Printf.sprintf "slot tables diverged: model=%d kernel=%d"
             (List.length m.mr_slots) (List.length r.rr_slots))
      else begin
        let mslot_of oid =
          let rec go i = function
            | [] -> -1
            | o :: tl -> if Int64.equal o oid then i else go (i + 1) tl
          in
          go 0 m.mr_slots
        in
        let rslot_of oid =
          let rec go i = function
            | [] -> -1
            | o :: tl -> if Int64.equal o oid then i else go (i + 1) tl
          in
          go 0 r.rr_slots
        in
        let rec slots i ms rs =
          match (ms, rs) with
          | [], [] -> None
          | moid :: mt, roid :: rt ->
              let mv = model_view_str m.mr_st mslot_of moid in
              let rv = real_view_str r.rr_k r.rr_cats rslot_of roid in
              if mv <> rv then
                Some
                  (Printf.sprintf "final state, slot %d:\n  model : %s\n  kernel: %s"
                     i mv rv)
              else slots (i + 1) mt rt
          | _ -> None
        in
        slots 0 m.mr_slots r.rr_slots
      end

(* ---------- branchable execution (fork-based corpus path) ---------- *)

type exec_mode = [ `Fork | `Replay ]

(* The paired kernel+model state after a trace prefix: the kernel as an
   immutable [Kernel.handle], the model as a pure value, plus the
   harness bookkeeping both executors need to pick up mid-trace. A
   branch is a value — resuming one never disturbs siblings — so a
   corpus entry can seed any number of mutants from its prefix
   states. *)
type branch = {
  br_handle : Kernel.handle;
  br_tid : T.oid;  (* driver thread, slot 1 *)
  br_outs : outcome list;  (* reversed *)
  br_slots : T.oid list;
  br_cats : Category.t list;
  br_stuck : string option;
  br_gates : (T.oid * bool) list;  (* created gates: (oid, keep) *)
  br_mdiff : Metrics.snapshot;  (* summed per-op metric windows *)
  br_term : term option;  (* kernel side went terminal at/before here *)
  br_mst : Model.state;
  br_mslots : Model.oid list;
  br_mncats : int;
  br_mouts : outcome list;  (* reversed *)
  br_mterm : term option;
}

let initial_branch ?weaken ?elide () =
  let mst = Model.init () in
  let k = Kernel.create ?weaken ?elide () in
  let tid = Kernel.spawn k ~name:"driver" (fun () -> ()) in
  {
    br_handle = Kernel.fork k;
    br_tid = tid;
    br_outs = [];
    br_slots = [ Kernel.root k; tid ];
    br_cats = [];
    br_stuck = None;
    br_gates = [];
    br_mdiff = [];
    br_term = None;
    br_mst = mst;
    br_mslots = [ Model.root mst; Model.boot_thread mst ];
    br_mncats = 0;
    br_mouts = [];
    br_mterm = None;
  }

(* Run [ops] from [base]. Model side: plain value-threaded steps.
   Kernel side: [Kernel.resume], re-arm the surviving gates, then one
   [Kernel.run] per op — the driver thread is restarted with each op's
   body and a fresh metric window wraps each run. Summed windows equal
   the single window of an uninterrupted replay (all snapshot scalars
   are additive) and the generators/clock/profile travel inside the
   handle, so outcomes, termination and the coverage signature are
   bit-identical to replaying [prefix @ ops] from scratch — the
   equivalence the double-run tests pin down.

   With [capture], a branch is recorded after every op; capture stops
   at a kernel-side crash (that op is cheap to re-execute from the
   previous branch) and the op loop short-circuits once both sides are
   terminal. *)
let exec_from ?(capture = false) base ops =
  let mst = ref base.br_mst in
  let mslots = ref base.br_mslots in
  let mncats = ref base.br_mncats in
  let mouts = ref base.br_mouts in
  let mterm = ref base.br_mterm in
  let mdo = mk_model_harness ~st:mst ~slots:mslots ~ncats:mncats ~outs:mouts in
  let k = Kernel.resume base.br_handle in
  let tid = base.br_tid in
  let outs = ref base.br_outs in
  let slots = ref base.br_slots in
  let cats = ref base.br_cats in
  let stuck = ref base.br_stuck in
  let gates = ref base.br_gates in
  let crash = ref None in
  let rterm = ref base.br_term in
  let mdiff = ref base.br_mdiff in
  let rdo = mk_real_harness ~outs ~slots ~cats ~stuck ~gates in
  (* Serialization dropped every gate entry; give each surviving gate
     back the body it was created with. *)
  List.iter
    (fun (g, keep) ->
      match Kernel.obj_kind k g with
      | Some T.Gate -> Kernel.set_gate_entry k g (gate_entry ~stuck keep)
      | Some _ | None -> ())
    !gates;
  let captured = ref [] in
  let capturing = ref capture in
  let snap () =
    {
      br_handle = Kernel.fork k;
      br_tid = tid;
      br_outs = !outs;
      br_slots = !slots;
      br_cats = !cats;
      br_stuck = !stuck;
      br_gates = !gates;
      br_mdiff = !mdiff;
      br_term = !rterm;
      br_mst = !mst;
      br_mslots = !mslots;
      br_mncats = !mncats;
      br_mouts = !mouts;
      br_mterm = !mterm;
    }
  in
  let exec_real_one op =
    let finished = ref false in
    Kernel.restart_thread k tid (fun () ->
        (match rdo op with
        | () -> ()
        | exception T.Kernel_error e ->
            (* mirrors the replay driver's outer handler: record the
               class, skip the rest of the trace, count as done *)
            outs := Err (eclass e) :: !outs;
            rterm := Some T_done
        | exception e -> crash := Some (Printexc.to_string e));
        finished := true);
    let d =
      metered (fun () ->
          try Kernel.run k
          with e -> crash := Some ("kernel: " ^ Printexc.to_string e))
    in
    mdiff := add_mdiff !mdiff d;
    match !crash with
    | Some m -> rterm := Some (T_crash m)
    | None ->
        if not !finished then
          rterm :=
            Some
              (match !stuck with
              | Some c -> T_stuck c
              | None -> (
                  match Kernel.thread_state k tid with
                  | None -> T_gone
                  | Some _ -> T_crash "driver wedged"))
  in
  let rec go = function
    | [] -> ()
    | _ :: _ when !rterm <> None && !mterm <> None -> ()
    | op :: rest ->
        (if !mterm = None then
           match mdo op with
           | () -> ()
           | exception Stop_model t -> mterm := Some t);
        if !rterm = None then exec_real_one op;
        (match !rterm with
        | Some (T_crash _) -> capturing := false
        | Some _ | None -> ());
        if !capturing then captured := snap () :: !captured;
        go rest
  in
  go ops;
  let term = Option.value !rterm ~default:T_done in
  let routs = List.rev !outs in
  let m =
    {
      mr_outs = List.rev !mouts;
      mr_term = Option.value !mterm ~default:T_done;
      mr_st = !mst;
      mr_slots = !mslots;
    }
  in
  let r =
    {
      rr_outs = routs;
      rr_term = term;
      rr_k = k;
      rr_slots = !slots;
      rr_cats = !cats;
      rr_cov = cov_of ~k ~mdiff:!mdiff ~outs:routs ~term;
    }
  in
  (m, r, Array.of_list (List.rev !captured))

let run_pair ?weaken ?elide ?(mode = `Replay) trace =
  match mode with
  | `Replay ->
      let m = run_model trace in
      let r = run_real ?weaken ?elide trace in
      (compare_runs m r, r.rr_cov)
  | `Fork ->
      let m, r, _ = exec_from (initial_branch ?weaken ?elide ()) trace in
      (compare_runs m r, r.rr_cov)

let compare_traces ?weaken ?elide ?mode trace =
  fst (run_pair ?weaken ?elide ?mode trace)

let trace_cov ?weaken ?elide ?mode trace =
  snd (run_pair ?weaken ?elide ?mode trace)

(* ---------- elided-vs-naive differential ---------- *)

(* Run the same trace on two real kernels — elision on vs. off — and
   require bit-identical behaviour: same per-op outcomes (including
   error classes), same termination, same [label.denied] total, same
   kernel profile and coverage signature, same final state in every
   slot. Only the [label.checks]/[label.elided] split may differ. *)
let compare_elision trace =
  let denied_around f =
    Metrics.with_enabled true (fun () ->
        let before = Metrics.snapshot_local () in
        let r = f () in
        let d = Metrics.diff ~before ~after:(Metrics.snapshot_local ()) in
        (r, Metrics.value_in d "label.denied"))
  in
  let a, da = denied_around (fun () -> run_real ~elide:true trace) in
  let b, db = denied_around (fun () -> run_real ~elide:false trace) in
  let rec outcomes i ao bo =
    match (ao, bo) with
    | [], [] -> None
    | a1 :: _, b1 :: _ when a1 <> b1 ->
        Some
          (Printf.sprintf "outcome %d: elided=%s naive=%s" i (pp_outcome a1)
             (pp_outcome b1))
    | _ :: at, _ :: bt -> outcomes (i + 1) at bt
    | a1 :: _, [] ->
        Some (Printf.sprintf "outcome %d: elided=%s naive=<none>" i (pp_outcome a1))
    | [], b1 :: _ ->
        Some (Printf.sprintf "outcome %d: elided=<none> naive=%s" i (pp_outcome b1))
  in
  match outcomes 0 a.rr_outs b.rr_outs with
  | Some d -> Some d
  | None ->
      if a.rr_term <> b.rr_term then
        Some
          (Printf.sprintf "termination: elided=%s naive=%s" (pp_term a.rr_term)
             (pp_term b.rr_term))
      else if da <> db then
        Some (Printf.sprintf "label.denied: elided=%d naive=%d" da db)
      else if
        Profile.to_list (Kernel.profile a.rr_k)
        <> Profile.to_list (Kernel.profile b.rr_k)
      then Some "kernel profile differs between elided and naive runs"
      else if a.rr_cov <> b.rr_cov then
        Some "coverage signature differs between elided and naive runs"
      else begin
        let slot_of slots oid =
          let rec go i = function
            | [] -> -1
            | o :: tl -> if Int64.equal o oid then i else go (i + 1) tl
          in
          go 0 slots
        in
        let rec slots i ao bo =
          match (ao, bo) with
          | [], [] -> None
          | aoid :: at, boid :: bt ->
              let av =
                real_view_str a.rr_k a.rr_cats (slot_of a.rr_slots) aoid
              in
              let bv =
                real_view_str b.rr_k b.rr_cats (slot_of b.rr_slots) boid
              in
              if av <> bv then
                Some
                  (Printf.sprintf
                     "final state, slot %d:\n  elided: %s\n  naive : %s" i av
                     bv)
              else slots (i + 1) at bt
          | _ -> Some "slot tables diverged between elided and naive runs"
        in
        slots 0 a.rr_slots b.rr_slots
      end

(* ---------- generators ---------- *)

let g_slot = Gen.frequency [ (4, Gen.int_range 0 3); (1, Gen.int_range 0 9) ]
let g_cslot = Gen.frequency [ (5, Gen.return 0); (2, Gen.int_range 0 9) ]
let g_ref = Gen.pair g_cslot g_slot

let g_rank =
  Gen.frequency
    [
      (3, Gen.return 0);
      (1, Gen.return 1);
      (2, Gen.return 2);
      (3, Gen.return 3);
      (2, Gen.return 4);
      (1, Gen.return 5);
    ]

let g_lspec =
  Gen.map2
    (fun d ents -> { ls_def = d; ls_ents = ents })
    (Gen.choose [ 2; 2; 2; 2; 1; 3; 3; 4 ])
    (Gen.resize 2 (Gen.list (Gen.pair (Gen.int_range 0 3) g_rank)))

(* requested gate labels biased low: below the floor when the caller is
   tainted, which is exactly what the ⋆-floor check must reject *)
let g_lspec_low =
  Gen.map2
    (fun d ents -> { ls_def = d; ls_ents = ents })
    (Gen.choose [ 1; 1; 2; 2; 3 ])
    (Gen.resize 1 (Gen.list (Gen.pair (Gen.int_range 0 3) g_rank)))

let g_verify =
  Gen.frequency
    [ (4, Gen.return { ls_def = 4; ls_ents = [] }); (1, g_lspec) ]

let g_quota =
  Gen.choose
    [
      0L;
      512L;
      513L;
      600L;
      1024L;
      4096L;
      4608L;
      65536L;
      1048576L;
      Int64.max_int;
      Int64.sub Int64.max_int 1L;
      Int64.sub Int64.max_int 4096L;
    ]

let g_len =
  Gen.frequency
    [ (5, Gen.int_range 0 64); (1, Gen.return (-1)); (1, Gen.int_range 65 4096) ]

let g_off =
  Gen.frequency [ (5, Gen.int_range 0 32); (1, Gen.choose [ -1; -8; 100000 ]) ]

let g_str = Gen.resize 8 Gen.string

let g_meta =
  Gen.frequency [ (3, g_str); (1, Gen.return (String.make 70 'm')) ]

let g_nbytes =
  Gen.choose
    [
      0L;
      1L;
      512L;
      4096L;
      65536L;
      -512L;
      -1L;
      -65536L;
      Int64.max_int;
      Int64.min_int;
      Int64.sub Int64.max_int 100L;
    ]

let g_avoid =
  Gen.frequency
    [
      (6, Gen.return []);
      (1, Gen.return [ Model.Gate ]);
      (1, Gen.return [ Model.Segment; Model.Thread ]);
    ]

let ( let* ) = Gen.( let* )

let gen_op =
  Gen.frequency
    [
      (3, Gen.return O_cat_create);
      (1, Gen.return O_self_get_label);
      (1, Gen.return O_self_get_clearance);
      (3, Gen.map (fun sp -> O_self_set_label sp) g_lspec);
      (2, Gen.map (fun sp -> O_self_set_clearance sp) g_lspec);
      (2, Gen.map (fun (c, o) -> O_get_label (c, o)) g_ref);
      (1, Gen.map (fun (c, o) -> O_get_kind (c, o)) g_ref);
      (1, Gen.map (fun (c, o) -> O_get_descrip (c, o)) g_ref);
      (2, Gen.map (fun (c, o) -> O_get_quota (c, o)) g_ref);
      (1, Gen.map (fun (c, o) -> O_set_fixed_quota (c, o)) g_ref);
      ( 1,
        Gen.map
          (fun (c, o) -> O_set_immutable (c, o))
          (Gen.pair g_cslot (Gen.int_range 2 9)) );
      (1, Gen.map (fun (c, o) -> O_get_metadata (c, o)) g_ref);
      ( 1,
        let* (c, o) = g_ref in
        Gen.map (fun s -> O_set_metadata (c, o, s)) g_meta );
      (3, Gen.map (fun (c, o) -> O_unref (c, o)) g_ref);
      ( 2,
        let* (c, t) = Gen.pair g_cslot g_slot in
        Gen.map (fun n -> O_quota_move (c, t, n)) g_nbytes );
      ( 4,
        let* c = g_cslot in
        let* sp = g_lspec in
        let* q = g_quota in
        Gen.map (fun av -> O_container_create (c, sp, q, av)) g_avoid );
      (2, Gen.map (fun (c, o) -> O_container_list (c, o)) g_ref);
      (1, Gen.map (fun (c, o) -> O_container_get_parent (c, o)) g_ref);
      ( 1,
        let* d = g_cslot in
        Gen.map (fun tgt -> O_container_link (d, tgt)) g_ref );
      ( 5,
        let* c = g_cslot in
        let* sp = g_lspec in
        let* q = g_quota in
        Gen.map (fun len -> O_segment_create (c, sp, q, len)) g_len );
      ( 4,
        let* r = g_ref in
        let* off = g_off in
        Gen.map (fun len -> O_segment_read (r, off, len)) g_len );
      ( 3,
        let* r = g_ref in
        let* off = g_off in
        Gen.map (fun s -> O_segment_write (r, off, s)) g_str );
      ( 2,
        let* r = g_ref in
        Gen.map (fun len -> O_segment_resize (r, len)) g_len );
      (1, Gen.map (fun (c, o) -> O_segment_get_size (c, o)) g_ref);
      ( 1,
        let* src = g_ref in
        let* d = g_cslot in
        let* sp = g_lspec in
        Gen.map (fun q -> O_segment_copy (src, d, sp, q)) g_quota );
      ( 2,
        let* r = g_ref in
        let* off = g_off in
        Gen.map2
          (fun e d -> O_segment_cas (r, off, e, d))
          (Gen.choose [ 0L; 1L; 42L ])
          (Gen.choose [ 0L; 7L; -1L ]) );
      ( 1,
        let* c = g_cslot in
        let* sp = g_lspec in
        Gen.map (fun q -> O_as_create (c, sp, q)) g_quota );
      (1, Gen.map (fun (c, o) -> O_as_get (c, o)) g_ref);
      ( 1,
        let* r = g_ref in
        let* sr = g_ref in
        let* va = Gen.choose [ 0L; 4096L; 8192L ] in
        Gen.map2 (fun off np -> O_as_map (r, va, sr, off, np)) (Gen.int_range 0 4)
          (Gen.int_range 1 4) );
      ( 1,
        let* r = g_ref in
        Gen.map (fun va -> O_as_unmap (r, va)) (Gen.choose [ 0L; 4096L; 8192L ]) );
      ( 2,
        let* c = g_cslot in
        let* sp = g_lspec in
        let* csp = g_lspec in
        Gen.map (fun q -> O_thread_create (c, sp, csp, q)) g_quota );
      ( 3,
        let* c = g_cslot in
        let* sp = g_lspec in
        let* csp = g_lspec in
        let* q = g_quota in
        Gen.map (fun keep -> O_gate_create (c, sp, csp, q, keep)) Gen.bool );
      ( 4,
        let* g = g_ref in
        let* lsp =
          Gen.frequency
            [
              (2, Gen.return None);
              (3, Gen.map (fun sp -> Some sp) g_lspec_low);
            ]
        in
        let* csp =
          Gen.frequency
            [ (3, Gen.return None); (1, Gen.map (fun sp -> Some sp) g_lspec) ]
        in
        let* vsp = g_verify in
        Gen.map (fun r -> O_gate_call (g, lsp, csp, vsp, r)) g_cslot );
      (3, Gen.map (fun (c, o) -> O_taint_to_read (c, o)) g_ref);
      ( 1,
        let* r = g_ref in
        Gen.map2 (fun off n -> O_futex_wake (r, off, n)) (Gen.int_range 0 16)
          (Gen.int_range 0 3) );
      (1, Gen.map (fun (c, o) -> O_sync_object (c, o)) g_ref);
    ]

let gen_trace = Gen.list gen_op

let l1_spec = { ls_def = 2; ls_ents = [] }

let gen_quota_op =
  Gen.frequency
    [
      ( 4,
        let* c = g_cslot in
        let* q = g_quota in
        Gen.map (fun av -> O_container_create (c, l1_spec, q, av)) g_avoid );
      ( 4,
        let* c = g_cslot in
        let* q = g_quota in
        Gen.map (fun len -> O_segment_create (c, l1_spec, q, len)) g_len );
      ( 3,
        let* r = g_ref in
        Gen.map (fun len -> O_segment_resize (r, len)) g_len );
      ( 4,
        let* (c, t) = Gen.pair g_cslot g_slot in
        Gen.map (fun n -> O_quota_move (c, t, n)) g_nbytes );
      ( 2,
        let* d = g_cslot in
        Gen.map (fun tgt -> O_container_link (d, tgt)) g_ref );
      (2, Gen.map (fun (c, o) -> O_set_fixed_quota (c, o)) g_ref);
      (2, Gen.map (fun (c, o) -> O_unref (c, o)) g_ref);
      (2, Gen.map (fun (c, o) -> O_get_quota (c, o)) g_ref);
      (1, Gen.map (fun (c, o) -> O_container_list (c, o)) g_ref);
      ( 1,
        let* src = g_ref in
        let* d = g_cslot in
        Gen.map (fun q -> O_segment_copy (src, d, l1_spec, q)) g_quota );
    ]

let gen_quota_trace = Gen.list gen_quota_op

(* ---------- shrinking ---------- *)

let shrink_by pred trace =
  let evals = ref 0 in
  let max_evals = 300 in
  let diverges t =
    !evals < max_evals
    && begin
         incr evals;
         pred t
       end
  in
  let rec pass t chunk =
    if chunk < 1 then t
    else
      let n = List.length t in
      let rec try_at start =
        if start >= n then pass t (chunk / 2)
        else
          let cand =
            List.filteri (fun i _ -> i < start || i >= start + chunk) t
          in
          if List.length cand < n && diverges cand then pass cand chunk
          else try_at (start + chunk)
      in
      try_at 0
  in
  let n = List.length trace in
  if n = 0 then trace else pass trace (max 1 (n / 2))

let shrink ?weaken ?elide trace =
  shrink_by (fun t -> compare_traces ?weaken ?elide t <> None) trace

(* ---------- coverage-guided fuzz loop ---------- *)

type fuzz_stats = {
  fs_runs : int;
  fs_corpus : int;
  fs_divergence : (op list * string) option;
  fs_seed : int64;
}

let long_mode () = Stdlib.Sys.getenv_opt "HISTAR_CHECK_LONG" = Some "1"

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l

let mutate rng t =
  let n = List.length t in
  if n = 0 then Gen.generate gen_trace ~seed:(Rng.next64 rng) ~size:8
  else
    match Rng.int rng 4 with
    | 0 ->
        let a = Rng.int rng n in
        let len = 1 + Rng.int rng (max 1 (n - a)) in
        List.filteri (fun i _ -> i < a || i >= a + len) t
    | 1 ->
        let a = Rng.int rng n in
        let len = 1 + Rng.int rng (min 4 (n - a)) in
        take (a + len) t @ take len (drop a t) @ drop (a + len) t
    | 2 ->
        let arr = Array.of_list t in
        let a = Rng.int rng n and b = Rng.int rng n in
        let tmp = arr.(a) in
        arr.(a) <- arr.(b);
        arr.(b) <- tmp;
        Array.to_list arr
    | _ ->
        let fresh = Gen.generate gen_trace ~seed:(Rng.next64 rng) ~size:6 in
        let a = Rng.int rng (n + 1) in
        take a t @ fresh @ drop a t

(* A corpus entry in fork mode remembers a branch per op boundary, so
   a mutant resumes from its longest common prefix with its parent
   (the mutation point) instead of replaying it. Replay-mode entries
   carry no branches. *)
type centry = { ce_trace : op list; ce_branches : branch array }

let common_prefix a b =
  let rec go n a b =
    match (a, b) with
    | x :: a', y :: b' when x = y -> go (n + 1) a' b'
    | _ -> n
  in
  go 0 a b

(* The fuzz loop is a strict sequence of (decide, execute, commit)
   iterations: decide consumes the RNG against the current corpus,
   execute is a pure differential check of the decided trace, commit
   folds the verdict back into the loop state (result / seen / corpus).
   Only execute is expensive, and only commit mutates state — so the
   parallel driver speculates: it decides a batch ahead (recording the
   RNG state before each decision), executes the batch on the pool, and
   commits in order. A commit that admits a corpus entry invalidates
   every later decision in the batch (they were decided against the
   stale corpus — decide's draw COUNT depends on corpus contents, not
   just its draws), so the driver rewinds the RNG to the state saved
   before the first invalid decision and re-decides. The committed
   (decide, execute, commit) sequence is therefore bit-identical to the
   sequential loop at every domain count: same RNG stream, same corpus
   evolution, same verdicts, same pinned catch indices. *)
let run_fuzz ?domains ?weaken ?elide ?runs ?max_size ?(seed = Check.seed ())
    ?(mode = `Fork) ?(seed_corpus = []) () =
  let runs =
    match runs with
    | Some r -> r
    | None -> if long_mode () then 3200 else 400
  in
  let max_size = Option.value max_size ~default:30 in
  let rng = Rng.create (Int64.logxor seed 0x5EED_F00DL) in
  let base =
    match mode with
    | `Fork -> Some (initial_branch ?weaken ?elide ())
    | `Replay -> None
  in
  let corpus = ref [] in
  let seen = Hashtbl.create 64 in
  let result = ref None in
  let i = ref 0 in
  (* Decision for iteration [idx], consuming [rng] against the current
     corpus. Seed-corpus traces run first (AFL-style): checked like any
     other run and admitted to the corpus by coverage, so the mutation
     engine can grow them. Empty by default, in which case RNG
     consumption — and thus every pinned catch index — is unchanged. *)
  let decide idx =
    if idx < List.length seed_corpus then (None, List.nth seed_corpus idx)
    else if !corpus <> [] && Rng.bool rng then
      let e = List.nth !corpus (Rng.int rng (List.length !corpus)) in
      (Some e, mutate rng e.ce_trace)
    else
      ( None,
        Gen.generate gen_trace ~seed:(Rng.next64 rng)
          ~size:(4 + Rng.int rng max_size) )
  in
  let execute (parent, trace) =
    match base with
    | None ->
        let detail, cov = run_pair ?weaken ?elide trace in
        (detail, cov, fun () -> { ce_trace = trace; ce_branches = [||] })
    | Some base ->
        (* Resume from the deepest parent branch that is still a
           prefix of the mutant; fresh traces start from the shared
           initial branch. Concurrent cells may resume the same
           anchor: [Kernel.resume] only reads the handle's persistent
           state. *)
        let anchor, i0 =
          match parent with
          | Some p when Array.length p.ce_branches > 0 ->
              let pl = common_prefix p.ce_trace trace in
              let i0 = min pl (Array.length p.ce_branches - 1) in
              (p.ce_branches.(i0), i0)
          | Some _ | None -> (base, 0)
        in
        let suffix = List.filteri (fun j _ -> j >= i0) trace in
        let m, r, _ = exec_from anchor suffix in
        let remember () =
          (* Deterministic re-execution with per-op capture, so only
             corpus admissions pay the fork-per-op cost. *)
          let _, _, captured = exec_from ~capture:true anchor suffix in
          let prefix =
            match parent with
            | Some p when Array.length p.ce_branches > 0 ->
                Array.sub p.ce_branches 0 (i0 + 1)
            | Some _ | None -> [| anchor |]
          in
          { ce_trace = trace; ce_branches = Array.append prefix captured }
        in
        (compare_runs m r, r.rr_cov, remember)
  in
  (* Commit runs on the main domain; [remember]'s capture re-execution
     is deterministic, so deferring it from the pool cell to the commit
     point changes nothing. *)
  let commit (_, trace) (detail, cov, remember) =
    match detail with
    | Some d ->
        let t' = shrink ?weaken ?elide trace in
        let d' = Option.value (compare_traces ?weaken ?elide t') ~default:d in
        result := Some (t', d');
        `Stop
    | None ->
        if not (Hashtbl.mem seen cov) then begin
          Hashtbl.add seen cov ();
          corpus := remember () :: !corpus;
          `Admitted
        end
        else `Clean
  in
  let d =
    if Par.in_task () then 1
    else match domains with Some d -> max 1 d | None -> Par.domains ()
  in
  if d <= 1 then
    (* Sequential loop, the reference semantics. *)
    while !result = None && !i < runs do
      let dec = decide !i in
      ignore (commit dec (execute dec) : [ `Stop | `Admitted | `Clean ]);
      incr i
    done
  else begin
    (* Speculative batches. The batch width adapts: corpus admissions
       are frequent early (every batch rewinds — speculative work is
       wasted) and rare once coverage saturates (batches commit whole),
       so width halves on a rewind and doubles on a full commit. *)
    let width = ref 1 in
    while !result = None && !i < runs do
      let b = min !width (runs - !i) in
      let states = Array.make b (Rng.state rng) in
      let decs = Array.make b (None, []) in
      for j = 0 to b - 1 do
        states.(j) <- Rng.state rng;
        decs.(j) <- decide (!i + j)
      done;
      let outs = Par.run ~domains:d b (fun j -> execute decs.(j)) in
      let invalid = ref false in
      let j = ref 0 in
      while (not !invalid) && !result = None && !j < b do
        (match commit decs.(!j) outs.(!j) with
        | `Stop | `Clean -> ()
        | `Admitted -> invalid := true);
        incr i;
        incr j
      done;
      if !result <> None then ()
      else if !invalid && !j < b then begin
        (* Decisions [!j..] were made against the stale corpus: rewind
           the RNG to just before the first of them and re-decide. *)
        Rng.set_state rng states.(!j);
        width := max 1 (!width / 2)
      end
      else width := min (4 * d) (!width * 2)
    done
  end;
  {
    fs_runs = !i;
    fs_corpus = Hashtbl.length seen;
    fs_divergence = !result;
    fs_seed = seed;
  }

(* Independent fuzz passes with split seeds, one pool cell per pass —
   the embarrassingly parallel outer loop for multi-pass (nightly)
   fuzzing. Each pass runs its own sequential loop (cells are sealed),
   so pass [p]'s stats are those of [run_fuzz ~seed:(split_seed seed p)]
   exactly, at every domain count. *)
let run_fuzz_many ?domains ?weaken ?elide ?runs ?max_size
    ?(seed = Check.seed ()) ?(mode = `Fork) ~passes () =
  Par.run ?domains passes (fun p ->
      run_fuzz ?weaken ?elide ?runs ?max_size ~seed:(Par.split_seed seed p)
        ~mode ())
  |> Array.to_list

(* Pure random sweep of the elided-vs-naive differential: no corpus
   (coverage signatures are elision-normalized, so both runs of a pair
   always produce the same one — there is nothing elision-specific to
   steer by), a divergence is shrunk preserving the elided-vs-naive
   disagreement. *)
let run_elide_fuzz ?(runs = 200) ?(max_size = 30) ?(seed = Check.seed ()) () =
  let rng = Rng.create (Int64.logxor seed 0xE11D_EF00L) in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < runs do
    let trace =
      Gen.generate gen_trace ~seed:(Rng.next64 rng)
        ~size:(4 + Rng.int rng max_size)
    in
    (match compare_elision trace with
    | Some d ->
        let t' = shrink_by (fun t -> compare_elision t <> None) trace in
        let d' = Option.value (compare_elision t') ~default:d in
        result := Some (t', d')
    | None -> ());
    incr i
  done;
  { fs_runs = !i; fs_corpus = 0; fs_divergence = !result; fs_seed = seed }

let report fs =
  match fs.fs_divergence with
  | None ->
      Printf.sprintf
        "conformance: %d traces, %d coverage signatures, no divergence \
         (HISTAR_CHECK_SEED=0x%Lx)"
        fs.fs_runs fs.fs_corpus fs.fs_seed
  | Some (t, d) ->
      Printf.sprintf
        "conformance DIVERGENCE after %d traces (%d signatures)\n\
         %s\n\
         minimal trace (%d ops):\n\
         %s\n\
         replay: HISTAR_CHECK_SEED=0x%Lx dune runtest"
        fs.fs_runs fs.fs_corpus d (List.length t) (pp_trace t) fs.fs_seed
