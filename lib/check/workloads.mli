(** Recorded workloads for the crash-point sweep, at three layers of the
    single-level store (§4):

    - {!wal}: raw log append/commit/truncate, checking prefix
      durability — every record whose commit returned must be
      recovered, in order, possibly extended by records of a commit
      that was in flight at the crash;
    - {!store}: object create/write/delete/sync/checkpoint against a
      version-history model — the recovered value of every object must
      be a version at least as new as the newest completed barrier
      covering it, and {!Histar_store.Store.fsck} must pass;
    - {!fs}: Unix-library file operations through a full kernel over
      the store, with fsync/sync_all durability floors checked by
      re-reading every path after recovery.

    All three are deterministic in the seed: re-running with the same
    seed replays the identical operation sequence, so a crash index
    uniquely identifies a failure. *)

val wal : ?commits:int -> unit -> Crash_sweep.t
val store : ?nops:int -> unit -> Crash_sweep.t
val fs : ?nops:int -> unit -> Crash_sweep.t

val all : unit -> Crash_sweep.t list
(** The three standard workloads with default sizes. *)
