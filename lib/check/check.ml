module Rng = Histar_util.Rng

exception Falsified of string

let default_seed = 0x00C0FFEEL

let parse_seed s =
  match Int64.of_string_opt s with
  | Some v -> v
  | None -> invalid_arg ("HISTAR_CHECK_SEED: cannot parse " ^ s)

let seed () =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_SEED" with
  | Some s when s <> "" -> parse_seed s
  | _ -> default_seed

let full_mode () =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let count_override () =
  match Stdlib.Sys.getenv_opt "HISTAR_CHECK_COUNT" with
  | Some s -> int_of_string_opt s
  | None -> None

let ensure ?(msg = "ensure failed") b = if not b then failwith msg

let exn_to_string = function
  | Failure m -> m
  | Falsified m -> m
  | e -> Printexc.to_string e

(* Walk the shrink tree: repeatedly descend into the first child that
   still falsifies the property, within a test budget. *)
let minimize tree fails budget =
  let steps = ref 0 in
  let rec go (Gen.Tree (x, cs) : _ Gen.tree) =
    let rec search cs =
      if !steps >= budget then None
      else
        match cs () with
        | Seq.Nil -> None
        | Seq.Cons (c, rest) ->
            incr steps;
            if fails (Gen.tree_root c) then Some c else search rest
    in
    match search cs with Some c -> go c | None -> x
  in
  (go tree, !steps)

type 'a failure = {
  minimal : 'a;
  iteration : int;
  count : int;
  size : int;
  shrink_steps : int;
  exn : exn;
}

let search ?(count = 100) ?(max_size = 30) ?seed:seed_arg
    ?(max_shrink_steps = 2000) gen prop =
  let seed = match seed_arg with Some s -> s | None -> seed () in
  let count =
    match count_override () with
    | Some n -> n
    | None -> if full_mode () then count * 5 else count
  in
  let master = Rng.create seed in
  let rec loop i =
    if i >= count then None
    else
      let iter_seed = Rng.next64 master in
      let size = 1 + (i * max_size / max 1 count) in
      let tree = Gen.run gen ~seed:iter_seed ~size in
      match prop (Gen.tree_root tree) with
      | () -> loop (i + 1)
      | exception first_exn ->
          let fails x =
            match prop x with () -> false | exception _ -> true
          in
          let minimal, shrink_steps = minimize tree fails max_shrink_steps in
          let exn =
            match prop minimal with
            | () -> first_exn (* should not happen; keep the original *)
            | exception e -> e
          in
          Some (seed, { minimal; iteration = i; count; size; shrink_steps; exn })
  in
  loop 0

let find_counterexample ?count ?max_size ?seed ?max_shrink_steps gen prop =
  match search ?count ?max_size ?seed ?max_shrink_steps gen prop with
  | None -> None
  | Some (_, f) -> Some f.minimal

let run ?count ?max_size ?seed ?max_shrink_steps ?print ~name gen prop =
  match search ?count ?max_size ?seed ?max_shrink_steps gen prop with
  | None -> ()
  | Some (seed, f) ->
      let printed =
        match print with Some p -> p f.minimal | None -> "<no printer>"
      in
      raise
        (Falsified
           (Printf.sprintf
              "property '%s' falsified (iteration %d/%d, size %d, %d shrink \
               steps)\n\
               counterexample: %s\n\
               cause: %s\n\
               replay: HISTAR_CHECK_SEED=0x%LX dune runtest"
              name f.iteration f.count f.size f.shrink_steps printed
              (exn_to_string f.exn) seed))

let test_case ?count ?max_size ?print name gen prop =
  Alcotest.test_case name `Quick (fun () ->
      try run ?count ?max_size ?print ~name gen prop
      with Falsified msg -> Alcotest.fail msg)
