module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Label = Histar_label.Label
module Level = Histar_label.Level
module Lio = Histar_lio.Lio
module Par = Histar_par.Par
module Mlabel = Histar_model.Mlabel
module Mlio = Histar_model.Mlio
open Histar_core.Types

(* ------------------------------------------------------------------ *)
(* Twin-trace programs                                                *)
(* ------------------------------------------------------------------ *)

type stmt =
  | S_write_low of int * string
  | S_write_high of int * string
  | S_write_low_reg of int
  | S_write_high_reg of int
  | S_read_low of int
  | S_read_high of int
  | S_unlabel_last
  | S_throw_if_odd of int
  | S_alloc_high
  | S_to_labeled_low of stmt list
  | S_to_labeled_high of stmt list
  | S_catch of stmt list * stmt list

exception Prog_throw

let rec twin_stmt = function
  | S_write_high (i, s) -> S_write_high (i, s ^ "'")
  | S_to_labeled_low b -> S_to_labeled_low (twin_prog b)
  | S_to_labeled_high b -> S_to_labeled_high (twin_prog b)
  | S_catch (b, h) -> S_catch (twin_prog b, twin_prog h)
  | s -> s

and twin_prog prog = List.map twin_stmt prog

let rec pp_stmt = function
  | S_write_low (i, s) -> Printf.sprintf "write_low(%d,%S)" i s
  | S_write_high (i, s) -> Printf.sprintf "write_high(%d,%S)" i s
  | S_write_low_reg i -> Printf.sprintf "write_low_reg(%d)" i
  | S_write_high_reg i -> Printf.sprintf "write_high_reg(%d)" i
  | S_read_low i -> Printf.sprintf "read_low(%d)" i
  | S_read_high i -> Printf.sprintf "read_high(%d)" i
  | S_unlabel_last -> "unlabel_last"
  | S_throw_if_odd i -> Printf.sprintf "throw_if_odd(%d)" i
  | S_alloc_high -> "alloc_high"
  | S_to_labeled_low b -> Printf.sprintf "to_labeled_low%s" (pp_prog b)
  | S_to_labeled_high b -> Printf.sprintf "to_labeled_high%s" (pp_prog b)
  | S_catch (b, h) -> Printf.sprintf "catch%s%s" (pp_prog b) (pp_prog h)

and pp_prog prog = "[" ^ String.concat "; " (List.map pp_stmt prog) ^ "]"

(* Literal lengths deliberately mix parities: the twin transform
   appends one byte, so throw_if_odd branches differently between the
   twins exactly when it reads a twin-varied value. *)
let gen_lit = Gen.choose [ "a"; "bb"; "ccc"; "dddd" ]
let gen_idx = Gen.int_range 0 2

let gen_prog : stmt list Gen.t =
  let open Gen in
  let base =
    [
      (3, map2 (fun i s -> S_write_low (i, s)) gen_idx gen_lit);
      (4, map2 (fun i s -> S_write_high (i, s)) gen_idx gen_lit);
      (2, map (fun i -> S_write_low_reg i) gen_idx);
      (2, map (fun i -> S_write_high_reg i) gen_idx);
      (2, map (fun i -> S_read_low i) gen_idx);
      (3, map (fun i -> S_read_high i) gen_idx);
      (2, return S_unlabel_last);
      (3, map (fun i -> S_throw_if_odd i) gen_idx);
      (2, return S_alloc_high);
    ]
  in
  let rec stmt depth =
    if depth = 0 then frequency base
    else
      let sub = resize 4 (list (stmt (depth - 1))) in
      frequency
        (base
        @ [
            (2, map (fun b -> S_to_labeled_low b) sub);
            (2, map (fun b -> S_to_labeled_high b) sub);
            (1, map2 (fun b h -> S_catch (b, h)) sub sub);
          ])
  in
  list (stmt 2)

(* ------------------------------------------------------------------ *)
(* Interpreter                                                        *)
(* ------------------------------------------------------------------ *)

type world = {
  w_ctx : Lio.ctx;
  w_hi : Label.t;
  w_lows : Lio.lref array;
  w_highs : Lio.lref array;
}

let low = Label.make Level.L1

(* Run a program against the LIO layer, inside the kernel thread.
   Denied operations are no-ops (the denial itself is label-determined,
   so twins agree on it); Prog_throw is the program's own control flow
   and propagates — to the nearest catch, or to the top level, where it
   ends the program.

   The host-level [reg] register must never become a side channel
   around the labels: every write to it goes through read_ref/unlabel
   (which taint first), and to_labeled blocks run on a private copy
   seeded from the outer register — sound because the to_labeled entry
   check already demands current ⊑ block label, and reg's content is
   always covered by the current label. *)
let interp w prog =
  let last = ref (Lio.label low "") in
  let rec exec reg = function
    | S_write_low (i, s) -> Lio.write_ref w.w_lows.(i) s
    | S_write_high (i, s) -> Lio.write_ref w.w_highs.(i) s
    | S_write_low_reg i -> Lio.write_ref w.w_lows.(i) !reg
    | S_write_high_reg i -> Lio.write_ref w.w_highs.(i) !reg
    | S_read_low i -> reg := Lio.read_ref w.w_lows.(i)
    | S_read_high i -> reg := Lio.read_ref w.w_highs.(i)
    | S_unlabel_last -> reg := Lio.unlabel !last
    | S_throw_if_odd i ->
        reg := Lio.read_ref w.w_highs.(i);
        if String.length !reg land 1 = 1 then raise Prog_throw
    | S_alloc_high -> ignore (Lio.new_ref w.w_ctx ~name:"dyn high" w.w_hi !reg)
    | S_to_labeled_low body ->
        last := Lio.to_labeled w.w_ctx low (fun () -> block reg body)
    | S_to_labeled_high body ->
        last := Lio.to_labeled w.w_ctx w.w_hi (fun () -> block reg body)
    | S_catch (body, handler) ->
        Lio.catch w.w_ctx
          (fun () -> List.iter (guarded reg) body)
          (fun _ -> List.iter (guarded reg) handler)
  and block reg body =
    let inner = ref !reg in
    List.iter (guarded inner) body;
    !inner
  and guarded reg s =
    try exec reg s with Lio.Lio_error _ | Kernel_error _ -> ()
  in
  let reg = ref "" in
  try List.iter (guarded reg) prog with Prog_throw -> ()

(* ------------------------------------------------------------------ *)
(* Low projection                                                     *)
(* ------------------------------------------------------------------ *)

(* Everything the projection emits is canonical: objects are named by
   descrip plus order of first appearance (never raw oids — a twin
   that allocates a different number of high objects shifts every
   subsequent oid), categories by their index in the world's category
   table (never raw ids or intern ids), and no metrics, elision
   counters, quotas or clock values appear at all (the harness kernels
   run with ~instrument:false besides). *)

type canon = {
  c_names : (oid, string) Hashtbl.t;
  c_counts : (string, int) Hashtbl.t;
  c_cats : int64 list;
}

let canon_make cats =
  {
    c_names = Hashtbl.create 16;
    c_counts = Hashtbl.create 16;
    c_cats = cats;
  }

let canon_name canon k oid =
  match Hashtbl.find_opt canon.c_names oid with
  | Some n -> n
  | None ->
      let d = Option.value ~default:"?" (Kernel.obj_descrip k oid) in
      let c = Option.value ~default:0 (Hashtbl.find_opt canon.c_counts d) in
      Hashtbl.replace canon.c_counts d (c + 1);
      let n = Printf.sprintf "%s#%d" d c in
      Hashtbl.replace canon.c_names oid n;
      n

let rank_name r = [| "*"; "0"; "1"; "2"; "3"; "J" |].(r)

let canon_label canon l =
  let entries, default = Label.ranked l in
  let cat_idx id =
    let rec go i = function
      | [] -> Printf.sprintf "?%Ld" id
      | c :: tl -> if Int64.equal c id then Printf.sprintf "c%d" i else go (i + 1) tl
    in
    go 0 canon.c_cats
  in
  Printf.sprintf "{%s%s}"
    (String.concat ""
       (List.map
          (fun (id, r) -> Printf.sprintf "%s:%s, " (cat_idx id) (rank_name r))
          entries))
    (rank_name default)

let kind_name = function
  | Segment -> "segment"
  | Thread -> "thread"
  | Address_space -> "as"
  | Gate -> "gate"
  | Container -> "container"
  | Device -> "device"

(* The low view of one finished run: the low-visible trace events (an
   untainted thread touching a low-labeled object) followed by the
   low-readable final state, walked from the root. Threads are skipped
   in the walk — their observable behavior is already the trace. *)
let project k ~canon ~events =
  let visible l = Label.leq l low in
  let ev_lines =
    List.filter_map
      (fun e ->
        if visible e.Kernel.ev_thread_label && visible e.Kernel.ev_obj_label
        then
          Some
            (Printf.sprintf "ev %s %s %s"
               (match e.Kernel.ev_dir with
               | `Observe -> "observe"
               | `Modify -> "modify")
               e.Kernel.ev_op
               (canon_name canon k e.Kernel.ev_obj))
        else None)
      events
  in
  let lines = ref [] in
  let emit s = lines := s :: !lines in
  let rec walk oid =
    match Kernel.obj_kind k oid with
    | None -> ()
    | Some Thread -> ()
    | Some kind -> (
        let lbl = Kernel.obj_label k oid in
        match lbl with
        | Some l when visible l ->
            let data =
              match Kernel.segment_data k oid with
              | Some d -> Printf.sprintf " data=%S" d
              | None -> ""
            in
            emit
              (Printf.sprintf "obj %s kind=%s label=%s%s"
                 (canon_name canon k oid) (kind_name kind) (canon_label canon l)
                 data);
            if kind = Container then
              List.iter
                (fun (child, _) -> walk child)
                (List.sort compare
                   (Option.value ~default:[] (Kernel.container_children k oid)))
        | _ -> ())
  in
  walk (Kernel.root k);
  ev_lines @ List.rev !lines

(* ------------------------------------------------------------------ *)
(* The harness                                                        *)
(* ------------------------------------------------------------------ *)

type base = {
  b_handle : Kernel.handle;
  b_tid : oid;
  b_world : world;
  b_cats : int64 list;
}

(* Shared prologue: one kernel, one thread that mints the secrecy
   category, builds the LIO context (low scratch + high scratch) and
   the named low/high refs — then halts. Both twins fork from here, so
   they agree bit-for-bit on every generator stream at the divergence
   point. *)
let build_base () =
  let k = Kernel.create ~instrument:false () in
  let cell = ref None in
  let tid =
    Kernel.spawn k ~name:"twin-main" (fun () ->
        let s = Sys.cat_create () in
        let hi = Label.of_list [ (s, Level.L3) ] Level.L1 in
        let ctx = Lio.init ~levels:[ hi ] ~container:(Kernel.root k) () in
        let w_lows =
          Array.init 3 (fun i ->
              Lio.new_ref ctx ~name:(Printf.sprintf "low%d" i) low "init")
        in
        let w_highs =
          Array.init 3 (fun i ->
              Lio.new_ref ctx ~name:(Printf.sprintf "high%d" i) hi "init")
        in
        cell := Some ({ w_ctx = ctx; w_hi = hi; w_lows; w_highs }, (s :> int64)))
  in
  Kernel.run k;
  match !cell with
  | Some (world, cat) ->
      { b_handle = Kernel.fork k; b_tid = tid; b_world = world; b_cats = [ cat ] }
  | None -> failwith "noninterference: prologue did not run"

let run_variant base prog =
  let k = Kernel.resume base.b_handle in
  let events = ref [] in
  Kernel.set_trace k (Some (fun e -> events := e :: !events));
  Kernel.restart_thread k base.b_tid (fun () -> interp base.b_world prog);
  Kernel.run k;
  Kernel.set_trace k None;
  let canon = canon_make base.b_cats in
  project k ~canon ~events:(List.rev !events)

let check_twins ?weaken prog =
  Lio.set_weaken weaken;
  Fun.protect
    ~finally:(fun () -> Lio.set_weaken None)
    (fun () ->
      let base = build_base () in
      let a = run_variant base prog in
      let b = run_variant base (twin_prog prog) in
      (a, b))

let diff_report prog a b =
  let rec first_diff i = function
    | x :: xs, y :: ys when String.equal x y -> first_diff (i + 1) (xs, ys)
    | x :: _, y :: _ -> Printf.sprintf "line %d:\n  A: %s\n  B: %s" i x y
    | x :: _, [] -> Printf.sprintf "line %d only in A: %s" i x
    | [], y :: _ -> Printf.sprintf "line %d only in B: %s" i y
    | [], [] -> "(no diff?)"
  in
  Printf.sprintf
    "low views diverge — noninterference violated\nprogram: %s\nfirst \
     divergence at %s\n--- low view A (%d lines)\n%s\n--- low view B (%d \
     lines)\n%s"
    (pp_prog prog)
    (first_diff 0 (a, b))
    (List.length a) (String.concat "\n" a) (List.length b)
    (String.concat "\n" b)

let prop ?weaken prog =
  let a, b = check_twins ?weaken prog in
  if not (List.equal String.equal a b) then failwith (diff_report prog a b)

(* Deterministic program schedule shared by the digest suite and the
   mutant hunt, so "catch index" means the same thing in both. *)
let prog_at ~seed i =
  let si = Int64.add (Int64.mul 0x2545F4914F6CDD1DL (Int64.of_int i)) seed in
  Gen.generate gen_prog ~seed:si ~size:(4 + (i mod 27))

(* Twin pairs are index-seeded and mutually independent, so the suite
   fans out on the lib/par pool: pair [i] runs as task [i] against its
   own fresh prologue, results join in index order, and the digest is
   computed from the ordered concatenation — byte-identical to the
   sequential loop at any HISTAR_DOMAINS. A failing pair surfaces as
   the lowest failing index, exactly what the sequential scan would
   have reported first. *)
let suite_digest ?domains ?(count = 500) ?(seed = Check.default_seed) () =
  let results =
    Par.run ?domains count (fun i ->
        let prog = prog_at ~seed i in
        let a, b = check_twins prog in
        (prog, a, b))
  in
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i (prog, a, b) ->
      if not (List.equal String.equal a b) then
        failwith (Printf.sprintf "pair %d: %s" i (diff_report prog a b));
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        a)
    results;
  (count, Digest.to_hex (Digest.string (Buffer.contents buf)))

(* Chunked scan: evaluate a pool-width batch of indices concurrently,
   then take the first catch in index order — the same smallest index
   the sequential scan returns, with wasted work bounded by one
   chunk. *)
let catch_index ?domains ~weaken ?(seed = Check.default_seed) ?(budget = 2000)
    () =
  let d =
    match domains with Some d -> max 1 d | None -> Par.domains ()
  in
  let chunk = max d (min budget (4 * d)) in
  let rec go i =
    if i >= budget then None
    else begin
      let n = min chunk (budget - i) in
      let caught =
        Par.run ?domains n (fun j ->
            let prog = prog_at ~seed (i + j) in
            match prop ~weaken prog with
            | () -> None
            | exception Failure _ -> Some (i + j, prog))
      in
      match Array.to_list caught |> List.filter_map Fun.id with
      | hit :: _ -> Some hit
      | [] -> go (i + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Differential test: Lio vs the Mlio reference                       *)
(* ------------------------------------------------------------------ *)

type lspec = (int * int) list

type lop =
  | L_taint of lspec
  | L_label of lspec
  | L_to_labeled of lspec * lop list
  | L_catch of lop list * bool

let pp_lspec sp =
  "{"
  ^ String.concat ","
      (List.map (fun (i, r) -> Printf.sprintf "c%d:%d" i r) sp)
  ^ "}"

let rec pp_lop = function
  | L_taint sp -> "taint" ^ pp_lspec sp
  | L_label sp -> "label" ^ pp_lspec sp
  | L_to_labeled (sp, b) -> "to_labeled" ^ pp_lspec sp ^ pp_lops b
  | L_catch (b, t) -> Printf.sprintf "catch%s(throw=%b)" (pp_lops b) t

and pp_lops ops = "[" ^ String.concat "; " (List.map pp_lop ops) ^ "]"

let gen_lops : lop list Gen.t =
  let open Gen in
  let spec = resize 3 (list (pair (int_range 0 3) (int_range 0 3))) in
  let rec op depth =
    if depth = 0 then
      frequency [ (3, map (fun s -> L_taint s) spec); (2, map (fun s -> L_label s) spec) ]
    else
      let sub = resize 4 (list (op (depth - 1))) in
      frequency
        [
          (3, map (fun s -> L_taint s) spec);
          (2, map (fun s -> L_label s) spec);
          (2, map2 (fun s b -> L_to_labeled (s, b)) spec sub);
          (1, map2 (fun b t -> L_catch (b, t)) sub bool);
        ]
  in
  list (op 2)

exception Body_throw

(* Both sides record one line per operation (plus a line at every scope
   exit), rendering labels canonically over the category-index table.
   The real side runs on a live kernel through lib/lio; the model side
   folds the same ops through the pure Mlio state machine. *)

let mlabel_of_spec sp =
  Mlabel.of_entries
    (List.map (fun (i, r) -> (Int64.of_int i, r + 1)) sp)
    Mlabel.l1

let render_state cur clear = Printf.sprintf "cur=%s clear=%s" cur clear

let real_trajectory ops =
  let k = Kernel.create ~instrument:false () in
  let out = ref [] in
  let record s = out := s :: !out in
  let _tid =
    Kernel.spawn k ~name:"lio-diff" (fun () ->
        let cats = Array.init 4 (fun _ -> Sys.cat_create ()) in
        (* Keep ownership of c0/c1, drop c2/c3 back to the default:
           both owned and non-owned taint paths get exercised. *)
        Sys.self_set_label
          (Label.set (Label.set (Sys.self_label ()) cats.(2) Level.L1)
             cats.(3) Level.L1);
        let ctx = Lio.init ~container:(Kernel.root k) () in
        let label_of_spec sp =
          Label.of_list
            (List.map (fun (i, r) -> (cats.(i), Level.of_rank (r + 1))) sp)
            Level.L1
        in
        let conv l =
          let entries, default = Label.ranked l in
          let idx id =
            let rec go i =
              if i >= 4 then 99
              else if Int64.equal (cats.(i) :> int64) id then i
              else go (i + 1)
            in
            go 0
          in
          (* Render sorted by category index: the raw ids sort in mint
             order only by accident, and the model side sorts by its
             own 0..3 ids. *)
          let indexed =
            List.sort compare (List.map (fun (id, r) -> (idx id, r)) entries)
          in
          "{"
          ^ String.concat ","
              (List.map (fun (i, r) -> Printf.sprintf "c%d:%d" i r) indexed)
          ^ Printf.sprintf "|%d}" default
        in
        let state () =
          render_state (conv (Sys.self_label ())) (conv (Sys.self_clearance ()))
        in
        let rec run ops = List.iter step ops
        and step = function
          | L_taint sp ->
              let v =
                try
                  Lio.taint (label_of_spec sp);
                  "ok"
                with Kernel_error _ -> "deny"
              in
              record (Printf.sprintf "taint %s %s" v (state ()))
          | L_label sp ->
              let v =
                try
                  ignore (Lio.label (label_of_spec sp) 0);
                  "ok"
                with Lio.Lio_error _ -> "deny"
              in
              record (Printf.sprintf "label %s %s" v (state ()))
          | L_to_labeled (sp, body) -> (
              match
                Lio.to_labeled ctx (label_of_spec sp) (fun () ->
                    record (Printf.sprintf "enter ok %s" (state ()));
                    run body)
              with
              | _ -> record (Printf.sprintf "exit %s" (state ()))
              | exception Lio.Lio_error _ ->
                  record (Printf.sprintf "enter deny %s" (state ())))
          | L_catch (body, throws) -> (
              (* A tainted thread may have no scratch container it can
                 modify (the differential runs with the default {1}
                 scratch only) — scope creation itself is then denied.
                 Placement is label-determined, so the model mirrors
                 the same rule below. *)
              match
                Lio.catch ctx
                  (fun () ->
                    run body;
                    if throws then raise Body_throw)
                  (fun _ -> ())
              with
              | () -> record (Printf.sprintf "caught ok %s" (state ()))
              | exception Lio.Lio_error _ ->
                  record (Printf.sprintf "caught deny %s" (state ())))
        in
        run ops)
  in
  Kernel.run k;
  List.rev !out

let model_trajectory ops =
  let out = ref [] in
  let record s = out := s :: !out in
  let conv m =
    "{"
    ^ String.concat ","
        (List.map
           (fun (id, r) -> Printf.sprintf "c%Ld:%d" id r)
           (Mlabel.entries m))
    ^ Printf.sprintf "|%d}" (Mlabel.default m)
  in
  let init =
    Mlio.make
      ~cur:(Mlabel.of_entries [ (0L, Mlabel.star); (1L, Mlabel.star) ] Mlabel.l1)
      ~clear:
        (Mlabel.of_entries
           (List.map (fun i -> (Int64.of_int i, Mlabel.l3)) [ 0; 1; 2; 3 ])
           Mlabel.l2)
  in
  let st = ref init in
  let state () = render_state (conv (Mlio.cur !st)) (conv (Mlio.clear !st)) in
  (* The real runner's ctx has only the default {1} scratch, so a scope
     is possible exactly when the current label can modify a {1} object
     — the same placement rule lib/lio's scratch_for applies. *)
  let can_scope () =
    Mlabel.can_modify ~thread:(Mlio.cur !st) ~obj:(Mlabel.make Mlabel.l1)
  in
  let rec run ops = List.iter step ops
  and step = function
    | L_taint sp ->
        let v =
          match Mlio.taint !st (mlabel_of_spec sp) with
          | Ok st' ->
              st := st';
              "ok"
          | Error () -> "deny"
        in
        record (Printf.sprintf "taint %s %s" v (state ()))
    | L_label sp ->
        let v = if Mlio.label_ok !st (mlabel_of_spec sp) then "ok" else "deny" in
        record (Printf.sprintf "label %s %s" v (state ()))
    | L_to_labeled (sp, body) -> (
        let pre = !st in
        match
          if can_scope () then Mlio.enter_to_labeled !st (mlabel_of_spec sp)
          else Error ()
        with
        | Ok st' ->
            st := st';
            record (Printf.sprintf "enter ok %s" (state ()));
            run body;
            st := Mlio.exit_scope ~pre ~keep_acquired:false !st;
            record (Printf.sprintf "exit %s" (state ()))
        | Error () -> record (Printf.sprintf "enter deny %s" (state ())))
    | L_catch (body, _throws) ->
        if not (can_scope ()) then
          record (Printf.sprintf "caught deny %s" (state ()))
        else begin
          let pre = !st in
          st := Mlio.enter_catch !st;
          run body;
          let final = Mlio.cur !st in
          st := Mlio.exit_scope ~pre ~keep_acquired:true !st;
          (match Mlio.taint !st final with Ok st' -> st := st' | Error () -> ());
          record (Printf.sprintf "caught ok %s" (state ()))
        end
  in
  run ops;
  List.rev !out

let prop_lio_model_diff ops =
  let real = real_trajectory ops in
  let model = model_trajectory ops in
  if not (List.equal String.equal real model) then
    failwith
      (Printf.sprintf
         "lio/model trajectories diverge\nops: %s\n--- real\n%s\n--- model\n%s"
         (pp_lops ops)
         (String.concat "\n" real)
         (String.concat "\n" model))
