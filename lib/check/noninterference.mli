(** Twin-trace noninterference harness over the lib/lio floating-label
    layer.

    A generated program and its {e twin} — identical except for the
    literals written at the secret category — both start from one
    shared prologue captured with {!Histar_core.Kernel.fork} (so the
    oid, category and taint-id generator streams agree bit-for-bit at
    the divergence point), run to completion on independent resumed
    branches, and must then be indistinguishable to a low observer:
    the low-visible trace events and the low-readable final state,
    projected canonically, must be equal.

    The projection never mentions raw oids, intern ids, metrics,
    elision counters, quotas or clock values: objects are named by
    descrip plus order of first appearance, categories by their index
    in the world's category table, and the kernels run with
    [~instrument:false]. A twin that allocates a different number of
    high objects therefore shifts every later oid without perturbing
    the projection — covered by the allocation-order regression in
    [test/test_check.ml].

    Divergences surface through {!Check} properties, so they shrink
    through the generator's tree and replay via [HISTAR_CHECK_SEED].
    The two planted library-level leaks ({!Histar_lio.Lio.weaken})
    must each be caught as a projection divergence: neither is a
    kernel bug — the leaking thread owns the category it leaks — so
    only this harness can see them. *)

(** {1 Programs} *)

type stmt =
  | S_write_low of int * string
  | S_write_high of int * string
      (** The only twin-varied statement: the twin appends one byte to
          the literal, flipping the parity {!S_throw_if_odd} branches
          on. *)
  | S_write_low_reg of int
  | S_write_high_reg of int
  | S_read_low of int
  | S_read_high of int
  | S_unlabel_last
      (** Unlabel the result of the most recent to_labeled block into
          the register (tainting the thread with its label). *)
  | S_throw_if_odd of int
      (** Read high ref [i]; throw iff the value has odd length —
          secret-dependent control flow. *)
  | S_alloc_high
      (** Allocate a fresh high ref: perturbs the oid stream without
          touching anything low-visible. *)
  | S_to_labeled_low of stmt list
  | S_to_labeled_high of stmt list
  | S_catch of stmt list * stmt list

val twin_prog : stmt list -> stmt list
val pp_prog : stmt list -> string
val gen_prog : stmt list Gen.t

(** {1 Twin runs} *)

val check_twins :
  ?weaken:Histar_lio.Lio.weaken -> stmt list -> string list * string list
(** Run the program and its twin from a fresh shared prologue; return
    both canonical low views. Always resets the weaken switch. *)

val prop : ?weaken:Histar_lio.Lio.weaken -> stmt list -> unit
(** Raises [Failure] with a full diff report if the low views differ —
    the property fed to {!Check.run}. *)

val prog_at : seed:int64 -> int -> stmt list
(** The deterministic program schedule shared by {!suite_digest} and
    {!catch_index}, so a "catch index" is meaningful on its own. *)

val suite_digest :
  ?domains:int -> ?count:int -> ?seed:int64 -> unit -> int * string
(** Run [count] (default 500) twin pairs from the schedule; raise on
    the first (lowest-index) divergence, otherwise return the pair
    count and a hex digest of every low view — two runs must return
    the identical digest (the harness is deterministic end to end).
    Pairs are independent and fan out on the lib/par pool
    ([?domains] defaults to [Par.domains ()]); the digest and any
    failure report are byte-identical at every domain count. *)

val catch_index :
  ?domains:int ->
  weaken:Histar_lio.Lio.weaken ->
  ?seed:int64 ->
  ?budget:int ->
  unit ->
  (int * stmt list) option
(** Smallest schedule index whose twin pair exposes the planted leak,
    with the offending program. Scans the schedule in pool-width
    chunks; the returned index is domain-count independent. *)

(** {1 Differential test: Lio vs the Mlio reference}

    Random label-level LIO programs (taints, label checks, to_labeled
    and catch scopes over four categories, two of them owned) run both
    through the real library on a live kernel and through the pure
    {!Histar_model.Mlio} state machine; the recorded trajectories —
    one allow/deny verdict plus the canonical (label, clearance) pair
    per operation — must be identical. *)

type lspec = (int * int) list
(** (category index 0..3, level 0..3) pairs over default 1. *)

type lop =
  | L_taint of lspec
  | L_label of lspec
  | L_to_labeled of lspec * lop list
  | L_catch of lop list * bool

val pp_lops : lop list -> string
val gen_lops : lop list Gen.t

val real_trajectory : lop list -> string list
val model_trajectory : lop list -> string list

val prop_lio_model_diff : lop list -> unit
(** Raises [Failure] with both trajectories on divergence. *)
