(** Deterministic crash-point sweep driver (§4 durability claim).

    A workload is a factory producing, from a seed, a fresh simulated
    disk plus a deterministic [run] against it and a recovery [check].
    The driver executes the workload once cleanly and records the total
    number of media sector writes [W] via {!Histar_disk.Disk.media_writes};
    every [i] in [\[0, W)] is then a distinct crash point: re-execute
    with [set_crash_after_writes i], reopen the surviving media, and run
    [check], which must recover and validate every invariant.

    By default a strided sample of at most [max_points] indices
    (always including [0] and [W-1]) is swept so the test stays tier-1
    fast; with [HISTAR_CHECK_FULL=1] every crash point is visited.

    Any violation raises {!Check.Falsified} with the seed and crash
    index, replayable in one command:

    {v
    HISTAR_CHECK_SEED=0xSEED HISTAR_CHECK_WORKLOAD=store \
      HISTAR_CHECK_CRASH_INDEX=123 dune runtest
    v} *)

type instance = {
  disk : Histar_disk.Disk.t;  (** fresh, unformatted *)
  run : unit -> unit;
      (** Execute the workload against [disk]; must be deterministic in
          the seed, and must let {!Histar_disk.Disk.Crashed} escape. *)
  check : crashed:bool -> Histar_disk.Disk.t -> unit;
      (** Validate recovery; the disk has been reopened if [crashed].
          Raises on any invariant violation. *)
}

type t = { name : string; mk : int64 -> instance }

type report = {
  workload : string;
  total_writes : int;  (** media writes in the clean run *)
  points : int;  (** crash indices actually exercised *)
}

val sweep : ?seed:int64 -> ?max_points:int -> ?full:bool -> t -> report
(** Defaults: seed from {!Check.seed}, [max_points] 64, [full] from
    {!Check.full_mode}. Honors [HISTAR_CHECK_WORKLOAD] /
    [HISTAR_CHECK_CRASH_INDEX] for single-point replay. *)

val pp_report : Format.formatter -> report -> unit
