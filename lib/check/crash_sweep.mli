(** Deterministic crash-point sweep driver (§4 durability claim).

    A workload is a factory producing, from a seed, a fresh simulated
    disk plus a deterministic [run] against it and a recovery [check].
    The driver executes the workload once cleanly and records the total
    number of media sector writes [W] via {!Histar_disk.Disk.media_writes};
    every [i] in [\[0, W)] is then a distinct crash point: the media as
    of writes [0..i-1] with the volatile cache lost must recover and
    validate every invariant.

    Two ways to produce cell [i]'s crashed media:

    - {b replay} (the historical mode): re-execute the whole workload
      with [set_crash_after_writes i] — O(W) work per cell, O(W²) for a
      full sweep;
    - {b fork} (default when the workload provides a model [snapshot]):
      during the single clean run, a pre-write hook captures an O(1)
      persistent-media snapshot plus the workload's model state before
      every write; each cell then branches a disk off its capture and
      checks — O(W) for the whole sweep.

    Both modes check the identical media state and raise the identical
    falsification, and {!recovery_metrics} lets tests assert the
    recovery work is metric-for-metric the same.

    By default a strided sample of at most [max_points] indices
    (always including [0] and [W-1]) is swept so the test stays tier-1
    fast; with [HISTAR_CHECK_FULL=1] every crash point is visited.

    Any violation raises {!Check.Falsified} with the seed and crash
    index, replayable in one command:

    {v
    HISTAR_CHECK_SEED=0xSEED HISTAR_CHECK_WORKLOAD=store \
      HISTAR_CHECK_CRASH_INDEX=123 dune runtest
    v} *)

type mode = [ `Fork | `Replay ]

type instance = {
  disk : Histar_disk.Disk.t;  (** fresh, unformatted *)
  run : unit -> unit;
      (** Execute the workload against [disk]; must be deterministic in
          the seed, and must let {!Histar_disk.Disk.Crashed} escape. *)
  check : crashed:bool -> Histar_disk.Disk.t -> unit;
      (** Validate recovery; the disk has been reopened if [crashed].
          Raises on any invariant violation. *)
  snapshot : (unit -> unit -> unit) option;
      (** Capture the workload's own model state (history arrays,
          expected-durability floors, …), returning a thunk that
          restores it. Required for fork-based sweeping: the model
          capture taken before media write [i] must describe exactly
          the state the replay-based run has when it crashes at [i]. *)
}

type t = { name : string; mk : int64 -> instance }

type report = {
  workload : string;
  total_writes : int;  (** media writes in the clean run *)
  points : int;  (** crash indices actually exercised *)
  mode : mode;  (** how cells were produced *)
  wall_seconds : float;  (** host CPU time for the whole sweep *)
}

val sweep :
  ?domains:int ->
  ?seed:int64 ->
  ?max_points:int ->
  ?full:bool ->
  ?mode:mode ->
  t ->
  report
(** Defaults: seed from {!Check.seed}, [max_points] 64, [full] from
    {!Check.full_mode}, [mode] fork when the workload has a [snapshot]
    (replay otherwise). Honors [HISTAR_CHECK_WORKLOAD] /
    [HISTAR_CHECK_CRASH_INDEX] for single-point replay.

    Cells fan out on the lib/par pool ([?domains] defaults to
    [Par.domains ()]): replay cells one per task, fork cells in
    contiguous chunks (each extra chunk deterministically rebuilds its
    own clean-run captures with metrics muted). Any falsification
    raised, and the merged metric totals, are byte-identical at every
    domain count — the first (lowest-index) failing cell wins, exactly
    as in a sequential sweep. *)

val recovery_metrics :
  t ->
  seed:int64 ->
  index:int ->
  mode:mode ->
  Histar_metrics.Metrics.snapshot
(** Produce the crashed media at [index] by the given mode, then run
    the workload's [check] with the metrics registry enabled only
    around it, returning the metric delta of the recovery work. The
    fork/replay equivalence tests assert the two deltas are
    byte-identical. *)

val cells_per_sec : report -> float
(** Sweep throughput; the fork-based speedup assertion divides these. *)

val mode_string : mode -> string
val pp_report : Format.formatter -> report -> unit
