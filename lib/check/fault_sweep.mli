(** Deterministic fault-matrix sweep (the robustness claim).

    One cell runs the webserver workload end to end under a
    {!Histar_faults.Faults.Schedule.t}: an in-kernel client fetches
    pages from an external {!Histar_net.Sim_host} through netd over a
    faulty hub (loss, corruption, duplication, reordering, jitter),
    while the backing store's disk injects latent sector errors,
    transient read errors and silent write corruption. Fetched pages
    are then written to the file system and fsynced (exercising the
    WAL under disk faults), the store is scrubbed and fsck'd, and
    every surviving object is re-read from the media.

    A cell passes only if every request completed with a byte-exact
    payload, {!Histar_store.Store.scrub} converged with no lost
    objects, and {!Histar_store.Store.fsck} is clean afterwards.
    Violations raise {!Check.Falsified} with a replay line:

    {v
    HISTAR_FAULTS='seed=0xc0ffee;disk:latent=0.01;...' dune runtest
    v}

    Every decision derives from the schedule seed, so a cell is
    byte-for-byte reproducible: {!sweep} runs each cell twice and
    requires the two metrics dumps to be identical. *)

module Schedule = Histar_faults.Faults.Schedule

type cell = {
  schedule : string;  (** canonical replayable schedule string *)
  requests : int;
  completed : int;  (** must equal [requests] *)
  corrupt_payloads : int;  (** must be 0 *)
  request_retries : int;  (** request-level retries the client needed *)
  scrub : Histar_store.Store.scrub_report;
  metrics_dump : string;  (** canonical JSON of the metrics registry *)
}

val run_cell : ?requests:int -> ?body_bytes:int -> Schedule.t -> cell
(** Run one schedule to completion (defaults: 3 requests of 8 KiB).
    Raises {!Check.Falsified} on any acceptance violation. *)

val matrix : seeds:int64 list -> Schedule.t list
(** For each seed: a disk-only, a net-only and a combined schedule
    (the default fault rates), plus a link-flap variant of the
    combined schedule for the first seed. *)

val sweep :
  ?requests:int -> ?body_bytes:int -> ?seeds:int64 list -> unit -> cell list
(** Run every matrix cell twice (honoring [HISTAR_FAULTS] as an extra
    cell when set) and require the two metrics dumps to be
    byte-identical; returns the first run's cells. Default seeds are
    derived from {!Check.seed}. *)

val pp_cell : Format.formatter -> cell -> unit
