module Faults = Histar_faults.Faults
module Schedule = Faults.Schedule
module Clock = Histar_util.Sim_clock
module Rng = Histar_util.Rng
module Disk = Histar_disk.Disk
module Store = Histar_store.Store
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Fs = Histar_unix.Fs
module Process = Histar_unix.Process
module Hub = Histar_net.Hub
module Addr = Histar_net.Addr
module Sim_host = Histar_net.Sim_host
module Netd = Histar_net.Netd
module Stack = Histar_net.Stack
module Metrics = Histar_metrics.Metrics
module Json = Histar_metrics.Json
open Histar_label

type cell = {
  schedule : string;
  requests : int;
  completed : int;
  corrupt_payloads : int;
  request_retries : int;
  scrub : Store.scrub_report;
  metrics_dump : string;
}

let l1 = Label.make Level.L1

let fail schedule fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Check.Falsified
           (Printf.sprintf
              "fault sweep: %s\n  replay with: HISTAR_FAULTS='%s' dune runtest"
              msg
              (Schedule.to_string schedule))))
    fmt

(* The page every request serves and every check compares against:
   pseudo-random bytes derived from the schedule seed, so corruption
   anywhere in the pipeline cannot cancel out. *)
let page_body schedule bytes =
  Rng.bytes (Rng.create (Int64.logxor schedule.Schedule.seed 0x9A6EL)) bytes

let run_cell ?(requests = 3) ?(body_bytes = 8 * 1024) schedule =
  let was_enabled = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was_enabled) @@ fun () ->
  let clock = Clock.create () in
  let disk =
    Disk.create ?faults:(Faults.Disk_faults.create schedule) ~clock ()
  in
  let store = Store.format ~disk ~wal_sectors:16_384 () in
  let kernel = Kernel.create ~clock ~store () in
  let hub =
    Hub.create ?faults:(Faults.Net_faults.create schedule) ~clock ()
  in
  let server =
    Sim_host.create ~hub ~clock ~ip:"10.0.0.2" ~mac:"www" ()
  in
  let body = page_body schedule body_bytes in
  Sim_host.serve_file server ~port:80 ~content:body;
  let pages = ref [] in
  let retries = ref 0 in
  let init_done = ref false in
  let path r = Printf.sprintf "/srv/page%02d" r in
  let _tid =
    Kernel.spawn kernel ~name:"init" (fun () ->
        let fs = Fs.format_root ~container:(Kernel.root kernel) ~label:l1 in
        let proc =
          Process.boot ~fs ~container:(Kernel.root kernel) ~name:"init" ()
        in
        let i = Sys.cat_create () in
        let netd =
          Netd.start kernel ~hub ~container:(Kernel.root kernel)
            ~ip:(Addr.ip_of_string "10.0.0.1") ~mac:"km" ~taint:i ()
        in
        let scratch =
          Sys.container_create
            ~container:(Process.container proc)
            ~label:(Label.of_list [ (i, Level.L2) ] Level.L1)
            ~quota:2_097_152L "fault-sweep scratch"
        in
        let client =
          Process.spawn proc ~name:"client"
            ~extra_label:[ (i, Level.L2) ]
            ~extra_clearance:[ (i, Level.L2) ]
            (fun _c ->
              let fetch r =
                let attempt () =
                  let sock =
                    Netd.Client.connect_retry netd ~return_container:scratch
                      (Addr.v "10.0.0.2" 80)
                  in
                  let buf = Buffer.create body_bytes in
                  Netd.Client.send netd ~return_container:scratch sock
                    (Printf.sprintf "GET /page%d" r);
                  let rec loop () =
                    match
                      Netd.Client.recv netd ~return_container:scratch sock
                    with
                    | Some d ->
                        Buffer.add_string buf d;
                        loop ()
                    | None -> ()
                  in
                  loop ();
                  Netd.Client.close netd ~return_container:scratch sock;
                  Buffer.contents buf
                in
                (* Request-level retry: a connection the transport gave
                   up on (give-up surfaced as [Netd_error]) is retried
                   from scratch. *)
                let rec go n =
                  match attempt () with
                  | page -> page
                  | exception Netd.Client.Netd_error _ when n > 1 ->
                      incr retries;
                      go (n - 1)
                in
                go 3
              in
              for r = 1 to requests do
                pages := (r, fetch r) :: !pages
              done)
        in
        ignore (Process.wait proc client);
        (* Persist every fetched page durably: the disk-fault side of
           the workload (WAL commits under latent/corrupt writes). *)
        ignore (Fs.mkdir fs "/srv");
        List.iter
          (fun (r, page) ->
            Fs.write_file fs (path r) page;
            Fs.fsync fs (path r))
          (List.rev !pages);
        Sys.sync_all ();
        init_done := true)
  in
  (* Drive to quiescence. [Kernel.run] fires the kernel-side timers
     (netd's retransmission pacemaker); the external server's stack
     only ticks on frame arrival, so when the kernel goes idle with
     the workload incomplete, the server must be holding an armed RTO
     — advance the clock to it and tick. *)
  let rec drive n =
    Kernel.run kernel;
    if not !init_done then begin
      if n <= 0 then fail schedule "simulation stalled (driver bound hit)";
      match Stack.next_timer_deadline (Sim_host.stack server) with
      | Some d ->
          let now = Clock.now_ns clock in
          if Int64.compare d now > 0 then
            Clock.advance_ns clock (Int64.sub d now);
          Stack.tick (Sim_host.stack server);
          drive (n - 1)
      | None ->
          fail schedule "simulation stalled with no armed server timer"
    end
  in
  drive 100_000;
  (* Network-level acceptance: every request completed, byte-exact. *)
  let completed = List.length !pages in
  let corrupt =
    List.length (List.filter (fun (_, p) -> not (String.equal p body)) !pages)
  in
  if completed <> requests then
    fail schedule "completed %d of %d requests" completed requests;
  if corrupt > 0 then
    fail schedule "%d of %d payloads corrupted in transit" corrupt requests;
  (* Disk-level acceptance: repair converges, nothing is lost, and the
     repaired store passes whole-disk fsck. *)
  let scrub = Store.scrub store in
  if not scrub.Store.clean then
    fail schedule "scrub did not converge in %d passes" scrub.Store.passes;
  if scrub.Store.lost <> [] then
    fail schedule "scrub lost %d objects" (List.length scrub.Store.lost);
  (match Store.fsck store with
  | () -> ()
  | exception Failure msg -> fail schedule "fsck after scrub: %s" msg);
  (* Re-read every surviving object from the media (checksums verify
     on the way in; transient faults exercise the retry path). *)
  Store.drop_clean_cache store;
  Store.iter_oids store (fun oid -> ignore (Store.get store ~oid));
  {
    schedule = Schedule.to_string schedule;
    requests;
    completed;
    corrupt_payloads = corrupt;
    request_retries = !retries;
    scrub;
    metrics_dump = Json.to_string (Metrics.to_json ());
  }

let matrix ~seeds =
  let cells =
    List.concat_map
      (fun seed ->
        [
          Schedule.mk ~seed ~disk:Schedule.default_disk ();
          Schedule.mk ~seed ~net:Schedule.default_net ();
          Schedule.mk ~seed ~disk:Schedule.default_disk
            ~net:Schedule.default_net ();
        ])
      seeds
  in
  match seeds with
  | [] -> cells
  | seed :: _ ->
      cells
      @ [
          Schedule.mk ~seed ~disk:Schedule.default_disk
            ~net:
              {
                Schedule.default_net with
                Schedule.flap_period_ms = 400;
                flap_down_ms = 20;
              }
            ();
        ]

let default_seeds () =
  let base = Check.seed () in
  [ base; Int64.add base 1L ]

let sweep ?requests ?body_bytes ?seeds () =
  let seeds = match seeds with Some s -> s | None -> default_seeds () in
  let schedules =
    matrix ~seeds
    @ (match Schedule.of_env () with Some s -> [ s ] | None -> [])
  in
  List.map
    (fun schedule ->
      let first = run_cell ?requests ?body_bytes schedule in
      let second = run_cell ?requests ?body_bytes schedule in
      if not (String.equal first.metrics_dump second.metrics_dump) then
        fail schedule
          "two runs of the same schedule diverged (metrics dumps differ)";
      first)
    schedules

let pp_cell fmt c =
  Format.fprintf fmt
    "%s: %d/%d requests, %d retries, scrub %d passes (%d repaired, %d \
     sectors quarantined)"
    c.schedule c.completed c.requests c.request_retries c.scrub.Store.passes
    c.scrub.Store.repaired c.scrub.Store.quarantined_sectors
