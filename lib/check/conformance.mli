(** Coverage-guided differential syscall fuzzer.

    Executes the same syscall trace against the real kernel
    ({!Histar_core.Kernel} driven through {!Histar_core.Sys} by a
    spawned driver thread) and against the pure reference model
    ({!Histar_model.Model}), and compares per-syscall outcomes (error
    {e class}, not message), the trace's termination (ran to the end /
    driver destroyed / stuck inside a gate / crashed), and the final
    object state reachable from the trace's slot table.

    Traces are abstract: objects are named by {e slot} — index into
    the list of objects the trace has created, starting with slot 0 =
    root container and slot 1 = the driver thread, reduced modulo the
    table size at execution — and categories by creation index,
    likewise reduced. This keeps every generated or mutated trace
    executable on both sides, and keeps model object ids (small
    sequential ints) and kernel object ids (pseudorandom cipher
    outputs) out of the comparison.

    The fuzz loop is coverage-guided: each run's signature is the set
    of {!Histar_metrics.Metrics} registry deltas and kernel
    {!Histar_core.Profile} counts, log2-bucketed; traces producing a
    new signature join the corpus and are preferred for mutation
    (span deletion/duplication/swap, op splices). Any divergence is
    shrunk to a minimal trace by greedy chunk removal and reported
    with the [HISTAR_CHECK_SEED] line that replays it. *)

module Kernel = Histar_core.Kernel
module Model = Histar_model.Model

type lspec = { ls_def : int; ls_ents : (int * int) list }
(** A label literal in trace terms: default rank (1..4, i.e. levels
    0..3) plus (category index, rank 0..5) entries. Category indexes
    are reduced modulo the number of categories the trace has created
    (entries are dropped when there are none). *)

type op =
  | O_cat_create
  | O_self_get_label
  | O_self_get_clearance
  | O_self_set_label of lspec
  | O_self_set_clearance of lspec
  | O_get_label of int * int  (** (container slot, object slot) *)
  | O_get_kind of int * int
  | O_get_descrip of int * int
  | O_get_quota of int * int
  | O_set_fixed_quota of int * int
  | O_set_immutable of int * int
  | O_get_metadata of int * int
  | O_set_metadata of int * int * string
  | O_unref of int * int
  | O_quota_move of int * int * int64  (** (container slot, target slot, nbytes) *)
  | O_container_create of int * lspec * int64 * Model.kind list
  | O_container_list of int * int
  | O_container_get_parent of int * int
  | O_container_link of int * (int * int)  (** (dest slot, target centry) *)
  | O_segment_create of int * lspec * int64 * int
  | O_segment_read of (int * int) * int * int
  | O_segment_write of (int * int) * int * string
  | O_segment_resize of (int * int) * int
  | O_segment_get_size of int * int
  | O_segment_copy of (int * int) * int * lspec * int64
  | O_segment_cas of (int * int) * int * int64 * int64
  | O_as_create of int * lspec * int64
  | O_as_get of int * int
  | O_as_map of (int * int) * int64 * (int * int) * int * int
  | O_as_unmap of (int * int) * int64
  | O_thread_create of int * lspec * lspec * int64
  | O_gate_create of int * lspec * lspec * int64 * bool
      (** gate whose service immediately gate-returns; the [bool] is
          "keep": return owning every category the entry owns (the §6.2
          ownership-granting gate) vs. dropping all of them *)
  | O_gate_create_oneshot of int * lspec * lspec * int64 * bool
      (** like {!O_gate_create} but with [Sys.gate_create ~one_shot:true]
          / model [gc_once = true]: the gate reaps itself from its naming
          container after the first successful invocation. Never emitted
          by {!gen_trace} (adding ops to the generator would shift the
          pinned mutation-catch indices); exercised by hand-written
          regression traces in [test/test_check.ml]. *)
  | O_gate_call of (int * int) * lspec option * lspec option * lspec * int
      (** (gate, requested label or floor, requested clearance or
          current, verify, return-container slot) *)
  | O_taint_to_read of int * int
      (** composite: read the object's label, compute taint_to_read
          with each side's own label algebra, raise self, then read *)
  | O_futex_wake of (int * int) * int * int
  | O_sync_object of int * int

type outcome =
  | Ok_unit
  | Ok_bool of bool
  | Ok_bytes of string
  | Ok_int of int64
  | Ok_quota of int64 * int64
  | Ok_kind of string
  | Ok_label of ((int * int) list * int)  (** canonical: (cat index, rank) *)
  | Ok_slot of int  (** object created: its new slot index *)
  | Ok_cat of int  (** category created: its index *)
  | Ok_entries of (int * string * string) list
      (** container listing as (slot or -1, kind, descrip) *)
  | Ok_maps of string
  | Err of string  (** error class: label / not_found / invalid / ... *)

type term =
  | T_done
  | T_gone  (** the trace destroyed the driver thread *)
  | T_stuck of string  (** stuck inside a gate; error class of the return path *)
  | T_crash of string  (** non-syscall exception escaped: always a divergence *)

val pp_op : op -> string
val pp_trace : op list -> string
val pp_outcome : outcome -> string

val exec_model : op list -> outcome list * term

val exec_real :
  ?weaken:Kernel.weaken -> ?elide:bool -> op list -> outcome list * term
(** [elide] is passed through to {!Histar_core.Kernel.create}; it
    defaults to the process-wide default (elision on unless
    [HISTAR_NO_ELIDE=1]). *)

type exec_mode = [ `Fork | `Replay ]
(** How a trace pair is executed. [`Replay] (the historical path)
    builds a fresh kernel and runs the whole trace in one scheduler
    run. [`Fork] goes through the branchable-kernel machinery: the
    trace starts from (or, in the fuzz loop, resumes mid-trace at) an
    immutable {!Histar_core.Kernel.fork} snapshot and runs one op per
    scheduler run, with per-op metric windows summed. Both modes
    produce bit-identical outcomes, termination, and coverage
    signatures — the double-run discipline the equivalence tests in
    [test_model.ml] pin down. *)

val compare_traces :
  ?weaken:Kernel.weaken ->
  ?elide:bool ->
  ?mode:exec_mode ->
  op list ->
  string option
(** Run both sides; [Some detail] describes the first divergence
    (per-op outcome, termination, or final-state), [None] if the
    kernel conforms on this trace. [mode] defaults to [`Replay]. *)

val trace_cov :
  ?weaken:Kernel.weaken -> ?elide:bool -> ?mode:exec_mode -> op list -> int
(** The trace's coverage signature (what guides the fuzz corpus), for
    asserting fork/replay bit-identity. Signatures are
    elision-normalized: [label.elided] folds back into [label.checks]
    and [label.summary_invalidations] is dropped, so the same trace
    yields the same signature with elision on and off. *)

val compare_elision : op list -> string option
(** The elided-vs-naive differential: run the trace on a kernel with
    label-check elision on and again with it off, and require
    bit-identical per-op outcomes, termination, [label.denied] delta,
    kernel profile, coverage signature and final per-slot state.
    [Some detail] describes the first disagreement. *)

val gen_trace : op list Gen.t
(** The full generator, biased towards label-boundary cases: owned
    categories, taint, gates, quota exhaustion. *)

val gen_quota_trace : op list Gen.t
(** Restricted generator for the container-quota property: every label
    is [{1}]; only create/resize/quota_move/link/fixed-quota/unref and
    observations, with adversarial quotas (0, tiny, huge, near-2^63). *)

type fuzz_stats = {
  fs_runs : int;  (** traces executed *)
  fs_corpus : int;  (** distinct coverage signatures seen *)
  fs_divergence : (op list * string) option;
      (** shrunk divergent trace and its detail, if any was found *)
  fs_seed : int64;
}

val run_fuzz :
  ?domains:int ->
  ?weaken:Kernel.weaken ->
  ?elide:bool ->
  ?runs:int ->
  ?max_size:int ->
  ?seed:int64 ->
  ?mode:exec_mode ->
  ?seed_corpus:op list list ->
  unit ->
  fuzz_stats
(** The coverage-guided loop. [seed_corpus] (default empty) is a list
    of traces executed before any generated ones — a seed corpus in
    the AFL sense: each is differentially checked like any other run,
    counts against [runs], and joins the corpus by coverage so the
    mutation engine can extend it. An empty seed corpus leaves RNG
    consumption bit-identical, so pinned catch indices are unaffected.

    Defaults: [runs] 400 (×8 when
    [HISTAR_CHECK_LONG=1]), [max_size] 30, [seed] {!Check.seed}[()],
    [mode] [`Fork]. In fork mode each corpus entry keeps a branch
    (kernel fork + model value) per op boundary and mutants resume
    from their longest common prefix with the parent instead of
    replaying it; verdicts, corpus evolution and reports are
    bit-identical to [`Replay] at the same seed. Shrinking is always
    replay-based (the reported repro line needs no branch state).
    Stops at the first divergence (after shrinking it).

    [?domains] (default {!Par.domains}[()]) sets the pool width for
    speculative execution: trace decisions are made ahead against the
    current RNG/corpus, executed in parallel, and committed in
    submission order, with an RNG rewind whenever a corpus admission
    invalidates the batch's later decisions. The committed sequence —
    stats, corpus, divergence, pinned catch indices — is bit-identical
    to the sequential loop at every domain count. *)

val run_fuzz_many :
  ?domains:int ->
  ?weaken:Kernel.weaken ->
  ?elide:bool ->
  ?runs:int ->
  ?max_size:int ->
  ?seed:int64 ->
  ?mode:exec_mode ->
  passes:int ->
  unit ->
  fuzz_stats list
(** [passes] independent fuzz passes, each seeded with
    [Par.split_seed seed p], one pool cell per pass (the
    embarrassingly parallel outer loop used by the nightly multi-pass
    sweep). Pass [p]'s stats equal a standalone
    [run_fuzz ~seed:(split_seed seed p)] exactly, at every domain
    count. *)

val run_elide_fuzz :
  ?runs:int -> ?max_size:int -> ?seed:int64 -> unit -> fuzz_stats
(** Random sweep of {!compare_elision} over generated traces
    (defaults: 200 runs, max_size 30, seed {!Check.seed}[()]). No
    corpus — coverage signatures are elision-normalized by design, so
    there is nothing elision-specific to steer by; [fs_corpus] is 0.
    A divergence is shrunk preserving the elided-vs-naive
    disagreement. *)

val report : fuzz_stats -> string
(** Human-readable report; includes the [HISTAR_CHECK_SEED=0x...] replay
    line when a divergence was found. *)
