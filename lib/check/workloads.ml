module Rng = Histar_util.Rng
module Sim_clock = Histar_util.Sim_clock
module Disk = Histar_disk.Disk
module Wal = Histar_wal.Wal
module Store = Histar_store.Store
module Kernel = Histar_core.Kernel
module Sys = Histar_core.Sys
module Types = Histar_core.Types
module Fs = Histar_unix.Fs
module Label = Histar_label.Label
module Level = Histar_label.Level

let fresh_disk () =
  let clock = Sim_clock.create () in
  (clock, Disk.create ~clock ())

(* ---------- raw WAL: prefix durability ---------- *)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys -> String.equal x y && is_prefix xs ys

let wal ?(commits = 14) () =
  let wal_start = 1 and wal_sectors = 1024 in
  let mk seed =
    let _clock, disk = fresh_disk () in
    let formatted = ref false in
    let committed = ref [] in
    let inflight = ref [] in
    let in_truncate = ref false in
    let run () =
      let rng = Rng.create seed in
      let wal = Wal.format ~disk ~start:wal_start ~sectors:wal_sectors in
      formatted := true;
      for _ = 1 to commits do
        if Rng.int rng 6 = 0 && !committed <> [] then begin
          in_truncate := true;
          Wal.truncate wal;
          committed := [];
          in_truncate := false
        end
        else begin
          let n = 1 + Rng.int rng 4 in
          let payloads =
            List.init n (fun _ -> Rng.bytes rng (1 + Rng.int rng 900))
          in
          List.iter (Wal.append wal) payloads;
          inflight := payloads;
          Wal.commit wal;
          committed := !committed @ payloads;
          inflight := []
        end
      done
    in
    let check ~crashed:_ disk =
      match Wal.recover ~disk ~start:wal_start ~sectors:wal_sectors with
      | exception e ->
          (* Before the format superblock landed, there is nothing to
             recover; afterwards recovery must always succeed. *)
          if !formatted then
            failwith ("WAL recovery failed: " ^ Printexc.to_string e)
      | wal', recovered ->
          Wal.check_invariants wal';
          let full = !committed @ !inflight in
          let ok =
            (is_prefix !committed recovered && is_prefix recovered full)
            || (!in_truncate && recovered = [])
          in
          if not ok then
            failwith
              (Printf.sprintf
                 "WAL prefix durability violated: %d committed, %d in \
                  flight, %d recovered%s"
                 (List.length !committed)
                 (List.length !inflight)
                 (List.length recovered)
                 (if !in_truncate then " (truncate in flight)" else ""))
    in
    (* Model capture for fork-based sweeping: plain value reads, so the
       returned thunk rewinds the model to this instant. *)
    let snapshot () =
      let f = !formatted
      and c = !committed
      and i = !inflight
      and t = !in_truncate in
      fun () ->
        formatted := f;
        committed := c;
        inflight := i;
        in_truncate := t
    in
    { Crash_sweep.disk; run; check; snapshot = Some snapshot }
  in
  { Crash_sweep.name = "wal"; mk }

(* ---------- store: version-history model ---------- *)

(* Per-object version history: index 0 is "never existed" (None);
   [floor] is the newest version guaranteed durable by a completed
   barrier (sync or checkpoint). Recovery must yield some version at
   index >= floor — older means a lost write (e.g. skipped WAL replay),
   and a value outside the history altogether means corruption. *)

let describe = function
  | None -> "<absent>"
  | Some v ->
      if String.length v <= 24 then Printf.sprintf "%S" v
      else Printf.sprintf "%S... (%d bytes)" (String.sub v 0 24) (String.length v)

let validate_versions ~what ~history ~floor ~get =
  Array.iteri
    (fun i hist ->
      let got = get i in
      let allowed = List.filteri (fun j _ -> j >= floor.(i)) hist in
      if not (List.mem got allowed) then
        failwith
          (Printf.sprintf
             "%s %d: recovered %s is not a version >= durability floor %d \
              (history has %d versions)"
             what i (describe got) floor.(i) (List.length hist)))
    history

let store ?(nops = 45) () =
  let noids = 6 in
  let oid_of i = Int64.of_int (100 + i) in
  let mk seed =
    let _clock, disk = fresh_disk () in
    let formatted = ref false in
    let history = Array.make noids [ None ] in
    let floor = Array.make noids 0 in
    let cur i = List.length history.(i) - 1 in
    let push i v = history.(i) <- history.(i) @ [ v ] in
    let run () =
      let rng = Rng.create seed in
      let s =
        Store.format ~disk ~wal_sectors:512 ~apply_threshold:8 ()
      in
      formatted := true;
      for _ = 1 to nops do
        let i = Rng.int rng noids in
        match Rng.int rng 12 with
        | 0 | 1 | 2 | 3 | 4 ->
            let v =
              Printf.sprintf "o%d.%d." i (cur i + 1)
              ^ Rng.bytes rng (Rng.int rng 700)
            in
            Store.put s ~oid:(oid_of i) v;
            push i (Some v)
        | 5 ->
            Store.delete s ~oid:(oid_of i);
            push i None
        | 6 | 7 | 8 ->
            Store.sync_oid s ~oid:(oid_of i);
            floor.(i) <- cur i
        | 9 ->
            (* group sync: the one-barrier fsync path *)
            let n = 1 + Rng.int rng 3 in
            let js =
              List.sort_uniq Int.compare
                (List.init n (fun _ -> Rng.int rng noids))
            in
            Store.sync_oids s ~oids:(List.map oid_of js);
            List.iter (fun j -> floor.(j) <- cur j) js
        | _ ->
            Store.checkpoint s;
            for j = 0 to noids - 1 do
              floor.(j) <- cur j
            done
      done
    in
    let check ~crashed:_ disk =
      match Store.recover ~disk with
      | exception e ->
          if !formatted then
            failwith ("store recovery failed: " ^ Printexc.to_string e)
      | s ->
          Store.fsck s;
          validate_versions ~what:"oid" ~history ~floor ~get:(fun i ->
              Store.get s ~oid:(oid_of i))
    in
    let snapshot () =
      let f = !formatted
      and h = Array.copy history
      and fl = Array.copy floor in
      fun () ->
        formatted := f;
        Array.blit h 0 history 0 (Array.length h);
        Array.blit fl 0 floor 0 (Array.length fl)
    in
    { Crash_sweep.disk; run; check; snapshot = Some snapshot }
  in
  { Crash_sweep.name = "store"; mk }

(* ---------- unixlib fs over a full kernel ---------- *)

let fs ?(nops = 24) () =
  let paths = [| "/d0/a"; "/d0/b"; "/d1/a"; "/d1/b"; "/top0"; "/top1" |] in
  let npaths = Array.length paths in
  let l1 = Label.make Level.L1 in
  let mk seed =
    let clock, disk = fresh_disk () in
    let formatted = ref false in
    let base_synced = ref false in
    let history = Array.make npaths [ None ] in
    let floor = Array.make npaths 0 in
    let cur i = List.length history.(i) - 1 in
    let cur_val i = List.nth history.(i) (cur i) in
    let push i v = history.(i) <- history.(i) @ [ v ] in
    let run () =
      let rng = Rng.create seed in
      let store = Store.format ~disk ~wal_sectors:1024 ~apply_threshold:16 () in
      formatted := true;
      let kernel = Kernel.create ~clock ~store () in
      let _tid =
        Kernel.spawn kernel ~name:"init" (fun () ->
            let fs =
              Fs.format_root ~container:(Kernel.root kernel) ~label:l1
            in
            ignore (Fs.mkdir fs "/d0");
            ignore (Fs.mkdir fs "/d1");
            Sys.sync_all ();
            base_synced := true;
            for _ = 1 to nops do
              let i = Rng.int rng npaths in
              let path = paths.(i) in
              match Rng.int rng 10 with
              | 0 | 1 | 2 ->
                  let v =
                    Printf.sprintf "%s#%d#" path (cur i + 1)
                    ^ Rng.bytes rng (Rng.int rng 600)
                  in
                  Fs.write_file fs path v;
                  push i (Some v)
              | 3 -> (
                  let suffix = Rng.bytes rng (1 + Rng.int rng 200) in
                  match cur_val i with
                  | Some v ->
                      Fs.append_file fs path suffix;
                      push i (Some (v ^ suffix))
                  | None ->
                      Fs.write_file fs path suffix;
                      push i (Some suffix))
              | 4 ->
                  if cur_val i <> None then begin
                    Fs.unlink fs path;
                    push i None
                  end
              | 5 | 6 ->
                  (* fsync: file + its directory metadata become
                     durable (the directory chain above is durable
                     since the base sync_all). *)
                  if cur_val i <> None then begin
                    Fs.fsync fs path;
                    floor.(i) <- cur i
                  end
              | _ ->
                  Sys.sync_all ();
                  for j = 0 to npaths - 1 do
                    floor.(j) <- cur j
                  done
            done)
      in
      Kernel.run kernel
    in
    let check ~crashed:_ disk =
      let recovered = Array.make npaths None in
      (match Store.recover ~disk with
      | exception e ->
          if !formatted then
            failwith ("store recovery failed: " ^ Printexc.to_string e)
      | s -> (
          Store.fsck s;
          if Store.object_count s = 0 then begin
            if !base_synced then failwith "empty store after base sync_all"
          end
          else
            match Kernel.recover ~store:s with
            | exception e ->
                if !base_synced then
                  failwith ("kernel recovery failed: " ^ Printexc.to_string e)
            | k ->
                let found = ref None in
                let _tid =
                  Kernel.spawn k ~name:"fsck" (fun () ->
                      let kids =
                        Option.value ~default:[]
                          (Kernel.container_children k (Kernel.root k))
                      in
                      List.iter
                        (fun (oid, kind) ->
                          if kind = Types.Container then
                            match Sys.obj_descrip (Types.self_entry oid) with
                            | "/" -> found := Some oid
                            | _ -> ()
                            | exception _ -> ())
                        kids;
                      match !found with
                      | None -> ()
                      | Some root ->
                          let fs = Fs.make ~root in
                          Array.iteri
                            (fun i path ->
                              match Fs.read_file fs path with
                              | v -> recovered.(i) <- Some v
                              | exception _ -> ())
                            paths)
                in
                Kernel.run k;
                if !found = None && !base_synced then
                  failwith "root directory lost after base sync_all"));
      validate_versions ~what:"path" ~history ~floor ~get:(fun i ->
          recovered.(i))
    in
    let snapshot () =
      let f = !formatted
      and b = !base_synced
      and h = Array.copy history
      and fl = Array.copy floor in
      fun () ->
        formatted := f;
        base_synced := b;
        Array.blit h 0 history 0 (Array.length h);
        Array.blit fl 0 floor 0 (Array.length fl)
    in
    { Crash_sweep.disk; run; check; snapshot = Some snapshot }
  in
  { Crash_sweep.name = "fs"; mk }

let all () = [ wal (); store (); fs () ]
