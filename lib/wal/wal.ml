module Disk = Histar_disk.Disk
module Codec = Histar_util.Codec
module Checksum = Histar_util.Checksum
module Metrics = Histar_metrics.Metrics
module Trace = Histar_metrics.Trace

(* Log activity counters: every append/commit/truncate, plus records
   re-read at recovery. Commit sectors expose how much batching the
   group-commit path achieves per barrier. *)
let m_appends = Metrics.counter "wal.appends"
let m_commits = Metrics.counter "wal.commits"
let m_commit_sectors = Metrics.counter "wal.commit_sectors"
let m_truncates = Metrics.counter "wal.truncates"
let m_replayed = Metrics.counter "wal.replayed_records"

(* A latent media error inside the log body ends the scan early: the
   records before the bad sector replay normally, the suffix is lost.
   This counter makes that degradation visible. *)
let m_media_stops = Metrics.counter "wal.media_read_stops"

exception Log_full

let magic = 0x57414C31L (* "WAL1" *)
let record_magic = 0x5245434FL (* "RECO" *)

type t = {
  disk : Disk.t;
  start : int;  (** first sector of the region (superblock) *)
  sectors : int;  (** region length in sectors *)
  sector_bytes : int;
  mutable epoch : int64;
  mutable head : int;  (** next free sector, relative to region start *)
  mutable seq : int64;  (** next record sequence number *)
  mutable committed : int;  (** committed records this epoch *)
  mutable pending : string list;  (** reversed buffered records *)
}

let sector_bytes t = t.sector_bytes

let superblock_bytes t ~epoch =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e magic;
  Codec.Enc.i64 e epoch;
  let body = Codec.Enc.to_string e in
  body ^ String.make (sector_bytes t - String.length body) '\000'

let write_superblock t =
  Disk.write t.disk ~sector:t.start (superblock_bytes t ~epoch:t.epoch);
  Disk.flush t.disk

(* Rewriting heals a latent-bad superblock sector (drive remap): the
   store's scrub path calls this when the log superblock stops reading
   back. *)
let rewrite_superblock t = write_superblock t

(* A record image: header + payload, padded to whole sectors.
   Header: record_magic, epoch, seq, payload length, payload checksum. *)
let record_image t payload =
  let e = Codec.Enc.create () in
  Codec.Enc.i64 e record_magic;
  Codec.Enc.i64 e t.epoch;
  Codec.Enc.i64 e t.seq;
  Codec.Enc.u32 e (String.length payload);
  Codec.Enc.i64 e (Checksum.fnv64 payload);
  Codec.Enc.raw e payload;
  let body = Codec.Enc.to_string e in
  let sb = sector_bytes t in
  let padded_len = (String.length body + sb - 1) / sb * sb in
  body ^ String.make (padded_len - String.length body) '\000'

let mk ~disk ~start ~sectors =
  if sectors < 8 then invalid_arg "Wal: region must be at least 8 sectors";
  {
    disk;
    start;
    sectors;
    sector_bytes = (Disk.geometry disk).Disk.sector_bytes;
    epoch = 0L;
    head = 1;
    seq = 0L;
    committed = 0;
    pending = [];
  }

let format ~disk ~start ~sectors =
  let t = mk ~disk ~start ~sectors in
  t.epoch <- 1L;
  write_superblock t;
  t

(* Log reads retry transient errors; a latent sector error is treated
   as the end of the parsable log (graceful degradation, counted). *)
let read_log t ~sector ~count =
  match Disk.read_retrying t.disk ~sector ~count with
  | image -> Some image
  | exception Disk.Read_error _ ->
      Metrics.Counter.incr m_media_stops;
      None

let parse_record t ~epoch ~expect_seq ~rel_sector =
  if rel_sector >= t.sectors then None
  else
    match read_log t ~sector:(t.start + rel_sector) ~count:1 with
    | None -> None
    | Some header ->
    let d = Codec.Dec.of_string header in
    match
      let m = Codec.Dec.i64 d in
      let ep = Codec.Dec.i64 d in
      let seq = Codec.Dec.i64 d in
      let len = Codec.Dec.u32 d in
      let sum = Codec.Dec.i64 d in
      (m, ep, seq, len, sum)
    with
    | exception Codec.Truncated -> None
    | m, ep, seq, len, sum ->
        if
          (not (Int64.equal m record_magic))
          || (not (Int64.equal ep epoch))
          || not (Int64.equal seq expect_seq)
        then None
        else
          let header_len = 8 + 8 + 8 + 4 + 8 in
          let total = header_len + len in
          let nsectors = (total + t.sector_bytes - 1) / t.sector_bytes in
          if rel_sector + nsectors > t.sectors then None
          else
            match read_log t ~sector:(t.start + rel_sector) ~count:nsectors with
            | None -> None
            | Some image ->
                if header_len + len > String.length image then None
                else
                  let payload = String.sub image header_len len in
                  if Int64.equal (Checksum.fnv64 payload) sum then
                    Some (payload, nsectors)
                  else None

let recover ~disk ~start ~sectors =
  let t = mk ~disk ~start ~sectors in
  let sb = Disk.read_retrying disk ~sector:start ~count:1 in
  let d = Codec.Dec.of_string sb in
  let ok_magic =
    match Codec.Dec.i64 d with
    | m -> Int64.equal m magic
    | exception Codec.Truncated -> false
  in
  if not ok_magic then invalid_arg "Wal.recover: no log at this location";
  t.epoch <- Codec.Dec.i64 d;
  let rec scan rel seq acc =
    match parse_record t ~epoch:t.epoch ~expect_seq:seq ~rel_sector:rel with
    | None -> (rel, seq, List.rev acc)
    | Some (payload, nsectors) ->
        scan (rel + nsectors) (Int64.add seq 1L) (payload :: acc)
  in
  let head, seq, payloads = scan 1 0L [] in
  t.head <- head;
  t.seq <- seq;
  t.committed <- List.length payloads;
  Metrics.Counter.add m_replayed t.committed;
  (t, payloads)

let image_sectors t image = String.length image / t.sector_bytes

let pending_sectors t =
  List.fold_left (fun acc img -> acc + image_sectors t img) 0 t.pending

let free_sectors t = t.sectors - t.head - pending_sectors t
let sectors_used t = t.head - 1 + pending_sectors t

let append t payload =
  let image = record_image t payload in
  if image_sectors t image > free_sectors t then raise Log_full;
  Metrics.Counter.incr m_appends;
  t.seq <- Int64.add t.seq 1L;
  t.pending <- image :: t.pending

let commit t =
  match t.pending with
  | [] -> ()
  | pending ->
      let images = List.rev pending in
      let blob = String.concat "" images in
      Disk.write t.disk ~sector:(t.start + t.head) blob;
      Disk.flush t.disk;
      Metrics.Counter.incr m_commits;
      Metrics.Counter.add m_commit_sectors (image_sectors t blob);
      if Trace.enabled () then
        Trace.emit
          ~ts_ns:(Histar_util.Sim_clock.now_ns (Disk.clock t.disk))
          "wal.commit"
          [
            ("records", string_of_int (List.length images));
            ("sectors", string_of_int (image_sectors t blob));
            ("epoch", Int64.to_string t.epoch);
          ];
      t.head <- t.head + image_sectors t blob;
      t.committed <- t.committed + List.length images;
      t.pending <- []

let truncate t =
  Metrics.Counter.incr m_truncates;
  if Trace.enabled () then
    Trace.emit
      ~ts_ns:(Histar_util.Sim_clock.now_ns (Disk.clock t.disk))
      "wal.truncate"
      [ ("next_epoch", Int64.to_string (Int64.add t.epoch 1L)) ];
  t.epoch <- Int64.add t.epoch 1L;
  t.head <- 1;
  t.seq <- 0L;
  t.committed <- 0;
  t.pending <- [];
  write_superblock t

let committed_records t = t.committed
let pending_records t = List.length t.pending
let epoch t = t.epoch

(* A branch's log handle: same cursor state, bound to the branch's
   disk. The epoch/head/seq fields live in this fresh record, so a
   fork's truncates (epoch bumps) never move the trunk's epoch — and
   vice versa. O(1); the pending list is immutable. *)
let fork t ~disk = { t with disk }

let check_invariants t =
  if t.head < 1 || t.head > t.sectors then
    failwith
      (Printf.sprintf "Wal: head %d outside region of %d sectors" t.head
         t.sectors);
  if Int64.compare t.seq (Int64.of_int (t.committed + List.length t.pending)) <> 0
  then failwith "Wal: seq does not count committed + pending records";
  (* The on-disk log must re-parse to exactly the committed records of
     the current epoch, ending at [head]. *)
  let sb = Disk.read_retrying t.disk ~sector:t.start ~count:1 in
  let d = Codec.Dec.of_string sb in
  (match Codec.Dec.i64 d with
  | m when Int64.equal m magic -> ()
  | _ -> failwith "Wal: bad superblock magic"
  | exception Codec.Truncated -> failwith "Wal: truncated superblock");
  let disk_epoch = Codec.Dec.i64 d in
  if not (Int64.equal disk_epoch t.epoch) then
    failwith "Wal: superblock epoch disagrees with handle";
  let rec scan rel seq n =
    match parse_record t ~epoch:t.epoch ~expect_seq:seq ~rel_sector:rel with
    | None -> (rel, n)
    | Some (_, nsectors) -> scan (rel + nsectors) (Int64.add seq 1L) (n + 1)
  in
  let head, n = scan 1 0L 0 in
  if n <> t.committed then
    failwith
      (Printf.sprintf "Wal: %d committed records in memory, %d on disk"
         t.committed n);
  if head <> t.head then
    failwith
      (Printf.sprintf "Wal: head %d in memory, %d by on-disk scan" t.head head)
