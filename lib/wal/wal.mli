(** Write-ahead log over a fixed region of the simulated disk (§4).

    The paper uses write-ahead logging for atomicity and crash
    consistency, queuing synchronous updates in a sequential on-disk
    log that is applied to home locations in batches. This module
    provides exactly that: records are appended in memory, forced with
    {!commit} (a sequential write plus a barrier), and discarded with
    {!truncate} once the application has checkpointed their effects.

    On-disk format: sector 0 of the region is a superblock holding the
    current epoch; records follow from sector 1, each with a header
    carrying magic, epoch, sequence number, payload length and an
    FNV-64 checksum. Recovery scans forward and stops at the first
    record that fails validation, yielding the committed prefix.

    Media faults: log reads retry transient errors with backoff; a
    latent sector error inside the log body ends the scan at that point
    (the committed prefix before it replays normally, the suffix is
    lost — counted by the [wal.media_read_stops] metric). *)

type t

exception Log_full

val format : disk:Histar_disk.Disk.t -> start:int -> sectors:int -> t
(** Initialize a fresh, empty log region. [sectors] must be at least 8. *)

val recover :
  disk:Histar_disk.Disk.t -> start:int -> sectors:int -> t * string list
(** Open an existing region, returning the log handle and the payloads
    of every committed record since the last {!truncate}, in order. *)

val append : t -> string -> unit
(** Buffer a record; durable only after {!commit}. Raises {!Log_full}
    if the region cannot hold the buffered data. *)

val commit : t -> unit
(** Force buffered records: one sequential write and a disk flush. *)

val truncate : t -> unit
(** Logically empty the log (bumps the epoch; a single-sector write
    plus flush). Called after a checkpoint has applied the records. *)

val rewrite_superblock : t -> unit
(** Rewrite the superblock from in-memory state. Rewriting a sector
    clears a latent media error (drive remap), so the store's scrub
    path uses this to heal a log superblock that stops reading back. *)

val committed_records : t -> int
(** Records durable in the current epoch. *)

val pending_records : t -> int
(** Records appended but not yet committed. *)

val free_sectors : t -> int
val sectors_used : t -> int

val epoch : t -> int64
(** Current epoch; bumped by {!truncate}. The store records in its
    superblock which epoch's records are valid to replay over the
    snapshot, closing the crash window between a checkpoint's
    superblock write and the log truncate. *)

val fork : t -> disk:Histar_disk.Disk.t -> t
(** A branch's log handle over [disk] (normally
    [Histar_disk.Disk.fork] of the trunk's): identical cursor state
    (epoch, head, sequence, committed count, pending records) in a
    fresh record, so epoch bumps and appends on either side stay local
    to that branch. O(1). *)

val check_invariants : t -> unit
(** Raises [Failure] if the handle and the on-disk log disagree: the
    region must re-parse to exactly [committed_records] records of the
    current epoch ending at the in-memory head, the superblock epoch
    must match, and the sequence counter must account for every
    committed and pending record. *)
